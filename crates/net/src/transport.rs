//! Length-prefixed TCP framing (`std::net`, no async runtime).
//!
//! Every message on the wire is
//!
//! ```text
//! msg := len:u32 kind:u8 payload[len - 1]
//! ```
//!
//! where `len` counts the kind byte plus the payload. A zero or
//! over-limit length is a protocol violation — the peer is
//! disconnected, exactly like a structurally corrupt payload.
//!
//! ## Message kinds
//!
//! | kind | direction | payload |
//! |------|-----------|---------|
//! | [`MSG_HELLO`]   | client → server | `version:u32` + interest spec string |
//! | [`MSG_WELCOME`] | server → client | `version:u32 session:u32` |
//! | [`MSG_ERROR`]   | server → client | human-readable reason (then close) |
//! | [`MSG_FRAME`]   | server → client | one `SGN1` replication frame |
//! | [`MSG_INPUT`]   | client → server | one `SGI1` input batch |
//! | [`MSG_SPAWNED`] | server → client | `req:u32 id:u64` spawn acknowledgement |
//! | [`MSG_RESUB`]   | client → server | new interest spec string (live re-subscription) |
//! | [`MSG_STATS`]   | client → server | empty (metrics request) |
//! | [`MSG_STATS`]   | server → client | `dump_metrics()` text (UTF-8) |
//!
//! The server reads non-blockingly through [`MsgReader`] (bytes
//! accumulate across ticks until a message completes); the blocking
//! [`read_msg`] serves the client side.

use std::io::{Read, Write};
use std::net::TcpStream;

use bytes::{BufMut, BytesMut};
use sgl_engine::codec::{get_str, get_u32, get_u64, put_str};

use crate::NetError;

/// Protocol version spoken by both [`NetListener`](crate::NetListener)
/// and [`NetClient`](crate::NetClient); a `HELLO` carrying any other
/// version is refused during the handshake.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default cap on one message's length (frame + kind byte). A hostile
/// length prefix beyond this disconnects the peer before any
/// allocation.
pub const DEFAULT_MAX_MSG: usize = 16 * 1024 * 1024;

/// Client → server: protocol version + interest subscription.
pub const MSG_HELLO: u8 = 1;
/// Server → client: handshake accepted; carries the session id.
pub const MSG_WELCOME: u8 = 2;
/// Server → client: refusal/disconnect reason (connection closes after).
pub const MSG_ERROR: u8 = 3;
/// Server → client: one `SGN1` replication frame.
pub const MSG_FRAME: u8 = 4;
/// Client → server: one `SGI1` input batch.
pub const MSG_INPUT: u8 = 5;
/// Server → client: spawn-intent acknowledgement (`req:u32 id:u64`).
pub const MSG_SPAWNED: u8 = 6;
/// Client → server: live interest re-subscription (a new spec string).
/// The session's next frame is a delta covering the symmetric
/// difference of the two windows; a spec the server cannot resolve is a
/// protocol violation and disconnects the session.
pub const MSG_RESUB: u8 = 7;
/// Both directions: as a client → server request (empty payload) it
/// asks for the listener's metrics; the server replies with the same
/// kind carrying the `dump_metrics()` text (stable line-oriented
/// `counter/gauge/hist` format). Served inline from the input-drain
/// budget — a client cannot amplify beyond its per-tick message
/// allowance.
pub const MSG_STATS: u8 = 8;

/// Serialize one message into a byte vector (length prefix included).
pub fn frame_msg(kind: u8, payload: &[u8]) -> Vec<u8> {
    let len = (payload.len() + 1) as u32;
    let mut out = Vec::with_capacity(5 + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(payload);
    out
}

/// Write one message, blocking until it is fully buffered by the OS.
pub fn write_msg(stream: &mut TcpStream, kind: u8, payload: &[u8]) -> Result<(), NetError> {
    stream
        .write_all(&frame_msg(kind, payload))
        .map_err(|e| NetError::Io(e.to_string()))
}

/// Read one message, blocking. `max_msg` bounds the length prefix.
pub fn read_msg(stream: &mut TcpStream, max_msg: usize) -> Result<(u8, Vec<u8>), NetError> {
    let mut len_bytes = [0u8; 4];
    stream
        .read_exact(&mut len_bytes)
        .map_err(|e| NetError::Io(e.to_string()))?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > max_msg {
        return Err(NetError::Corrupt("message length out of range"));
    }
    let mut body = vec![0u8; len];
    stream
        .read_exact(&mut body)
        .map_err(|e| NetError::Io(e.to_string()))?;
    Ok((body[0], body.split_off(1)))
}

/// Incremental message reader for non-blocking sockets: call
/// [`MsgReader::fill`] whenever the socket is readable, then drain
/// complete messages with [`MsgReader::next_msg`].
#[derive(Debug)]
pub struct MsgReader {
    buf: Vec<u8>,
    max_msg: usize,
}

impl MsgReader {
    /// A reader enforcing `max_msg` on every length prefix.
    pub fn new(max_msg: usize) -> Self {
        MsgReader {
            buf: Vec::new(),
            max_msg,
        }
    }

    /// Change the length limit (e.g. when a handshake reader — capped
    /// tightly — is promoted to a session reader). Buffered bytes are
    /// kept.
    pub fn set_max_msg(&mut self, max_msg: usize) {
        self.max_msg = max_msg;
    }

    /// Append bytes read elsewhere (an I/O shard's inbox) to the
    /// decode buffer — the readiness-mode counterpart of
    /// [`MsgReader::fill`].
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into messages.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pull everything currently readable from a non-blocking stream.
    /// Returns `true` if the peer closed the connection (EOF).
    pub fn fill(&mut self, stream: &mut TcpStream) -> Result<bool, NetError> {
        let mut chunk = [0u8; 8192];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(true),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(NetError::Io(e.to_string())),
            }
        }
    }

    /// The next complete `(kind, payload)` message, if one is buffered.
    /// A malformed length prefix is a protocol error.
    pub fn next_msg(&mut self) -> Result<Option<(u8, Vec<u8>)>, NetError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len == 0 || len > self.max_msg {
            return Err(NetError::Corrupt("message length out of range"));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let kind = self.buf[4];
        let payload = self.buf[5..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some((kind, payload)))
    }
}

/// Encode a `HELLO` payload.
pub fn hello_payload(version: u32, spec: &str) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(8 + spec.len());
    buf.put_u32_le(version);
    put_str(&mut buf, spec);
    buf.to_vec()
}

/// Decode a `HELLO` payload into `(version, interest spec)`.
pub fn decode_hello(mut buf: &[u8]) -> Result<(u32, String), NetError> {
    let version = get_u32(&mut buf)?;
    let spec = get_str(&mut buf)?;
    if !buf.is_empty() {
        return Err(NetError::Corrupt("trailing bytes"));
    }
    Ok((version, spec))
}

/// Encode a `RESUB` payload (the new interest spec, as its string form).
pub fn resub_payload(spec: &str) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(4 + spec.len());
    put_str(&mut buf, spec);
    buf.to_vec()
}

/// Decode a `RESUB` payload into the new interest spec string.
pub fn decode_resub(mut buf: &[u8]) -> Result<String, NetError> {
    let spec = get_str(&mut buf)?;
    if !buf.is_empty() {
        return Err(NetError::Corrupt("trailing bytes"));
    }
    Ok(spec)
}

/// Encode a `WELCOME` payload.
pub fn welcome_payload(version: u32, session: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&session.to_le_bytes());
    out
}

/// Decode a `WELCOME` payload into `(version, session id)`.
pub fn decode_welcome(mut buf: &[u8]) -> Result<(u32, u32), NetError> {
    let version = get_u32(&mut buf)?;
    let session = get_u32(&mut buf)?;
    if !buf.is_empty() {
        return Err(NetError::Corrupt("trailing bytes"));
    }
    Ok((version, session))
}

/// Encode a `SPAWNED` acknowledgement payload.
pub fn spawned_payload(req: u32, id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&req.to_le_bytes());
    out.extend_from_slice(&id.to_le_bytes());
    out
}

/// Decode a `SPAWNED` payload into `(req token, entity id)`.
pub fn decode_spawned(mut buf: &[u8]) -> Result<(u32, u64), NetError> {
    let req = get_u32(&mut buf)?;
    let id = get_u64(&mut buf)?;
    if !buf.is_empty() {
        return Err(NetError::Corrupt("trailing bytes"));
    }
    Ok((req, id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_codecs_roundtrip() {
        let (v, s) = decode_hello(&hello_payload(1, "Unit where x in [0, 1]")).unwrap();
        assert_eq!((v, s.as_str()), (1, "Unit where x in [0, 1]"));
        assert_eq!(decode_welcome(&welcome_payload(1, 7)).unwrap(), (1, 7));
        assert_eq!(decode_spawned(&spawned_payload(3, 99)).unwrap(), (3, 99));
        assert_eq!(
            decode_resub(&resub_payload("Unit where x in [5, 9]")).unwrap(),
            "Unit where x in [5, 9]"
        );
        assert!(decode_resub(&resub_payload("x")[..2]).is_err());
        assert!(decode_hello(&hello_payload(1, "x")[..3]).is_err());
        assert!(decode_welcome(&[0; 7]).is_err());
        assert!(decode_welcome(&[0; 9]).is_err(), "trailing bytes");
    }

    #[test]
    fn msg_reader_reassembles_split_messages() {
        let mut reader = MsgReader::new(1024);
        let bytes = [frame_msg(MSG_FRAME, b"abc"), frame_msg(MSG_INPUT, b"")].concat();
        // Feed one byte at a time (the TCP stream can split anywhere).
        let mut seen = Vec::new();
        for &b in &bytes {
            reader.buf.push(b);
            while let Some(msg) = reader.next_msg().unwrap() {
                seen.push(msg);
            }
        }
        assert_eq!(
            seen,
            vec![(MSG_FRAME, b"abc".to_vec()), (MSG_INPUT, Vec::new())]
        );
    }

    #[test]
    fn hostile_lengths_are_protocol_errors() {
        let mut reader = MsgReader::new(1024);
        reader.buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(reader.next_msg().is_err(), "zero length");
        let mut reader = MsgReader::new(1024);
        reader.buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(reader.next_msg().is_err(), "oversized length");
    }
}
