//! Readiness-driven I/O sharding for [`NetListener`](crate::NetListener).
//!
//! The legacy transport swept every socket once per tick (one
//! nonblocking read + write each), so the TCP tick grew linearly in
//! *connected* sessions even when almost all of them were idle. In
//! readiness mode the listener instead splits its I/O:
//!
//! - an **accept thread** blocks on the listening socket and queues raw
//!   connections (handshakes stay on the main thread);
//! - **N I/O shard threads** each own a disjoint set of session
//!   sockets, block in `epoll_wait(2)` (or the portable `poll(2)`
//!   fallback) and do *byte-level* work only: read available bytes into
//!   a per-session inbox, write queued outbound bytes, enforce the
//!   send-queue overflow cap. Idle sockets cost nothing — nobody
//!   touches them until the kernel reports readiness.
//!
//! ## The determinism contract
//!
//! Everything that affects replicated state or frame bytes — decoding,
//! validation, intent application, handshakes, frame production — stays
//! on the main thread and is processed in **ascending session-id
//! order**. Shard assignment mirrors `engine/pool.rs`'s geometry rule:
//! a session's virtual shard is a pure function of its id
//! (`sid % VSHARDS`), never of the thread count, and thread `t` owns
//! the virtual shards with `vshard % io_threads == t`. Socket readiness
//! order can therefore only affect *when* bytes surface, never how they
//! are interpreted — frames are bit-identical to the single-thread
//! sweep path at any `io_threads`, which the determinism proptests
//! enforce against the sweep oracle.

/// Virtual shard count: sessions hash to one of these, threads own
/// `vshard % io_threads`. A pure function of the session id so the
/// assignment never depends on how many I/O threads happen to run
/// (`engine/pool.rs` convention).
pub const VSHARDS: u32 = 64;

/// Which transport engine drives the listener's sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Legacy single-thread per-socket sweep — kept selectable as the
    /// bit-exactness oracle (the `use_generations: false` of the
    /// transport layer).
    Sweep,
    /// Accept thread + N I/O shard threads driven by kernel readiness.
    Readiness,
}

/// Which kernel readiness API the shards block in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoBackend {
    /// `epoll(7)` — Linux.
    Epoll,
    /// Portable `poll(2)` fallback.
    Poll,
}

/// Transport I/O configuration of a listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoConfig {
    pub mode: IoMode,
    /// Readiness backend (ignored in sweep mode).
    pub backend: IoBackend,
    /// I/O shard threads (ignored in sweep mode; clamped to ≥ 1).
    pub threads: usize,
}

impl IoConfig {
    /// The legacy sweep (oracle) mode.
    pub fn sweep() -> IoConfig {
        IoConfig {
            mode: IoMode::Sweep,
            backend: IoBackend::Poll,
            threads: 1,
        }
    }

    /// Readiness mode on the platform-default backend (`epoll` on
    /// Linux, `poll` elsewhere).
    pub fn readiness(threads: usize) -> IoConfig {
        IoConfig {
            mode: IoMode::Readiness,
            backend: if cfg!(target_os = "linux") {
                IoBackend::Epoll
            } else {
                IoBackend::Poll
            },
            threads: threads.max(1),
        }
    }

    /// Readiness mode pinned to the portable `poll(2)` backend.
    pub fn poll_fallback(threads: usize) -> IoConfig {
        IoConfig {
            backend: IoBackend::Poll,
            ..IoConfig::readiness(threads)
        }
    }

    /// The environment default, following the `SGL_THREADS` precedent
    /// in `engine/exec.rs`: `SGL_IO_THREADS` unset or `1..` selects
    /// readiness mode with that many shard threads (default 1);
    /// `SGL_IO_THREADS=0` selects the legacy sweep.
    /// `SGL_IO_BACKEND=poll` pins the fallback backend (`epoll` is the
    /// Linux default). Non-Unix platforms always sweep — the shim is
    /// Unix-only.
    pub fn from_env() -> IoConfig {
        if !cfg!(unix) {
            return IoConfig::sweep();
        }
        let threads = std::env::var("SGL_IO_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok());
        let mut io = match threads {
            Some(0) => return IoConfig::sweep(),
            Some(n) => IoConfig::readiness(n),
            None => IoConfig::readiness(1),
        };
        if let Ok(backend) = std::env::var("SGL_IO_BACKEND") {
            match backend.trim() {
                "poll" => io.backend = IoBackend::Poll,
                "epoll" => io.backend = IoBackend::Epoll,
                "sweep" => return IoConfig::sweep(),
                _ => {}
            }
        }
        io
    }
}

impl Default for IoConfig {
    /// [`IoConfig::from_env`].
    fn default() -> IoConfig {
        IoConfig::from_env()
    }
}

/// A snapshot of one I/O shard's published counters (cumulative since
/// listener bind). Empty in sweep mode. The syscall counts come from
/// the shim's instrumented per-thread hook — this is what lets tests
/// assert an untouched shard did *zero* syscalls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoShardStats {
    /// `epoll_wait`/`poll` syscalls the shard issued.
    pub waits: u64,
    /// Wait returns caused by the shard's waker.
    pub wakeups: u64,
    /// Waker nudges that found no commands and no socket readiness
    /// (the wake raced a wait return that already drained the work).
    pub wakeups_spurious: u64,
    /// Socket `read(2)` syscalls.
    pub reads: u64,
    /// Socket `write(2)` syscalls.
    pub writes: u64,
    /// Outbound bytes currently queued across the shard's sessions.
    pub backlog_bytes: u64,
    /// Sockets the shard currently owns.
    pub sessions: u64,
}

#[cfg(unix)]
pub(crate) use imp::*;

#[cfg(unix)]
mod imp {
    use super::{IoBackend, IoShardStats, VSHARDS};
    use std::collections::VecDeque;
    use std::io::ErrorKind;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::thread::JoinHandle;
    use std::time::Duration;

    use epoll::shim::{self, Backend, Interest, Ready, Selector, Waker};
    use sgl_storage::{FxHashMap, FxHashSet};

    /// Selector token reserved for the waker pipe.
    const WAKE_TOKEN: u64 = u64::MAX;

    /// Soft cap on bytes a shard will hold in its inbox per session
    /// before pausing reads (the main thread absorbs the inbox every
    /// drain; pausing extends TCP backpressure through the shard so a
    /// flooding client cannot pin unbounded memory between ticks).
    pub(crate) const INBOUND_SOFT_CAP: usize = 256 * 1024;

    fn backend_of(b: IoBackend) -> Backend {
        match b {
            IoBackend::Epoll => Backend::Epoll,
            IoBackend::Poll => Backend::Poll,
        }
    }

    /// The I/O thread that owns session id `sid` when `threads` shard
    /// threads run. Pure in `sid` and `threads`; never consults load.
    pub(crate) fn owner_of(sid: u32, threads: usize) -> usize {
        ((sid % VSHARDS) as usize) % threads.max(1)
    }

    /// Main → shard commands (FIFO per shard; per-session byte order
    /// on the wire follows command order).
    pub(crate) enum Cmd {
        /// Adopt a freshly handshaken socket and write its greeting
        /// (the queued `WELCOME`).
        Register {
            sid: u32,
            stream: TcpStream,
            greeting: Vec<u8>,
        },
        /// Queue outbound bytes (frames, acks, stats replies).
        Send { sid: u32, bytes: Vec<u8> },
        /// Best-effort notice write, then shutdown and drop the socket.
        Disconnect { sid: u32, notice: Vec<u8> },
        /// Retry this shard's backlogged sockets.
        Flush,
        /// Drop all sockets and exit the thread.
        Shutdown,
    }

    /// Shard → main per-session report, absorbed by the main thread at
    /// every drain (bytes append to the session's `MsgReader`; flags
    /// latch into its connection state).
    #[derive(Default)]
    pub(crate) struct SessionIn {
        pub bytes: Vec<u8>,
        /// Peer closed its write side (`read` returned 0).
        pub eof: bool,
        /// A socket error surfaced while reading or writing.
        pub err: bool,
        /// The shard disconnected the session for send-queue overflow
        /// (socket already closed, notice already attempted).
        pub overflow: bool,
    }

    pub(crate) type Inbox = FxHashMap<u32, SessionIn>;

    /// Counters a shard publishes after every loop turn (cumulative).
    #[derive(Default)]
    pub(crate) struct ShardCounters {
        pub waits: AtomicU64,
        pub wakeups: AtomicU64,
        pub wakeups_spurious: AtomicU64,
        pub reads: AtomicU64,
        pub writes: AtomicU64,
        pub backlog: AtomicU64,
        pub sessions: AtomicU64,
    }

    impl ShardCounters {
        pub fn snapshot(&self) -> IoShardStats {
            IoShardStats {
                waits: self.waits.load(Ordering::Relaxed),
                wakeups: self.wakeups.load(Ordering::Relaxed),
                wakeups_spurious: self.wakeups_spurious.load(Ordering::Relaxed),
                reads: self.reads.load(Ordering::Relaxed),
                writes: self.writes.load(Ordering::Relaxed),
                backlog_bytes: self.backlog.load(Ordering::Relaxed),
                sessions: self.sessions.load(Ordering::Relaxed),
            }
        }
    }

    /// Main-thread handle to one I/O shard.
    pub(crate) struct ShardHandle {
        pub cmds: Arc<Mutex<VecDeque<Cmd>>>,
        pub inbox: Arc<Mutex<Inbox>>,
        pub waker: Arc<Waker>,
        pub counters: Arc<ShardCounters>,
        join: Option<JoinHandle<()>>,
    }

    impl ShardHandle {
        pub fn spawn(
            index: usize,
            backend: IoBackend,
            max_queued: usize,
            overflow_notice: Vec<u8>,
        ) -> std::io::Result<ShardHandle> {
            // Selector + waker are created on the caller so bind-time
            // failures (e.g. epoll unsupported) surface as bind errors.
            let mut selector = Selector::new(backend_of(backend))?;
            let waker = Arc::new(Waker::new()?);
            selector.register(waker.fd(), WAKE_TOKEN, Interest::READ)?;
            let cmds: Arc<Mutex<VecDeque<Cmd>>> = Arc::default();
            let inbox: Arc<Mutex<Inbox>> = Arc::default();
            let counters: Arc<ShardCounters> = Arc::default();
            let thread = ShardThread {
                selector,
                waker: waker.clone(),
                cmds: cmds.clone(),
                inbox: inbox.clone(),
                counters: counters.clone(),
                max_queued,
                overflow_notice,
                conns: FxHashMap::default(),
                paused: FxHashSet::default(),
                wakeups: 0,
                wakeups_spurious: 0,
            };
            let join = std::thread::Builder::new()
                .name(format!("sgl-io-{index}"))
                .spawn(move || thread.run())?;
            Ok(ShardHandle {
                cmds,
                inbox,
                waker,
                counters,
                join: Some(join),
            })
        }

        /// Queue commands and nudge the shard once.
        pub fn send(&self, batch: impl IntoIterator<Item = Cmd>) {
            let mut q = self.cmds.lock().unwrap();
            q.extend(batch);
            drop(q);
            self.waker.wake();
        }
    }

    impl Drop for ShardHandle {
        fn drop(&mut self) {
            self.send([Cmd::Shutdown]);
            if let Some(join) = self.join.take() {
                let _ = join.join();
            }
        }
    }

    /// One session socket, shard side. Only bytes live here — all
    /// protocol interpretation happens on the main thread.
    struct ShardConn {
        stream: TcpStream,
        fd: RawFd,
        /// Outbound bytes the kernel has not accepted yet.
        wr: Vec<u8>,
        /// Write interest currently armed (level-triggered: armed only
        /// while `wr` is non-empty).
        want_write: bool,
        /// Read side retired (EOF or error already reported).
        done_reading: bool,
    }

    struct ShardThread {
        selector: Selector,
        waker: Arc<Waker>,
        cmds: Arc<Mutex<VecDeque<Cmd>>>,
        inbox: Arc<Mutex<Inbox>>,
        counters: Arc<ShardCounters>,
        max_queued: usize,
        overflow_notice: Vec<u8>,
        conns: FxHashMap<u32, ShardConn>,
        /// Sessions whose reads are paused on the inbox soft cap.
        paused: FxHashSet<u32>,
        wakeups: u64,
        wakeups_spurious: u64,
    }

    impl ShardThread {
        fn run(mut self) {
            let mut ready: Vec<Ready> = Vec::new();
            loop {
                self.publish();
                if self.selector.wait(-1, &mut ready).is_err() {
                    // EINTR is retried inside the shim; anything else
                    // is fatal for the shard (sockets close on drop).
                    self.publish();
                    return;
                }
                let mut woke = false;
                let mut io_events = 0usize;
                for &ev in &ready {
                    if ev.token == WAKE_TOKEN {
                        self.waker.drain();
                        woke = true;
                        self.wakeups += 1;
                    } else {
                        io_events += 1;
                        self.handle_io(ev);
                    }
                }
                let did_cmds = match self.drain_cmds() {
                    Ok(n) => n,
                    Err(()) => {
                        self.publish();
                        return; // Shutdown
                    }
                };
                if woke && did_cmds == 0 && io_events == 0 {
                    self.wakeups_spurious += 1;
                }
                self.resume_paused();
            }
        }

        fn publish(&self) {
            let s = shim::stats::snapshot();
            let c = &self.counters;
            c.waits.store(s.waits, Ordering::Relaxed);
            c.reads.store(s.reads, Ordering::Relaxed);
            c.writes.store(s.writes, Ordering::Relaxed);
            c.wakeups.store(self.wakeups, Ordering::Relaxed);
            c.wakeups_spurious
                .store(self.wakeups_spurious, Ordering::Relaxed);
            c.backlog.store(
                self.conns.values().map(|c| c.wr.len() as u64).sum(),
                Ordering::Relaxed,
            );
            c.sessions.store(self.conns.len() as u64, Ordering::Relaxed);
        }

        /// Returns how many commands ran, or `Err(())` on `Shutdown`.
        fn drain_cmds(&mut self) -> Result<usize, ()> {
            let mut did = 0;
            loop {
                let cmd = self.cmds.lock().unwrap().pop_front();
                let Some(cmd) = cmd else { return Ok(did) };
                did += 1;
                match cmd {
                    Cmd::Register {
                        sid,
                        stream,
                        greeting,
                    } => self.register(sid, stream, greeting),
                    Cmd::Send { sid, bytes } => {
                        if let Some(conn) = self.conns.get_mut(&sid) {
                            conn.wr.extend_from_slice(&bytes);
                            self.flush_conn(sid);
                        }
                    }
                    Cmd::Disconnect { sid, notice } => self.close_conn(sid, Some(&notice)),
                    Cmd::Flush => {
                        let backlogged: Vec<u32> = self
                            .conns
                            .iter()
                            .filter(|(_, c)| !c.wr.is_empty())
                            .map(|(&sid, _)| sid)
                            .collect();
                        for sid in backlogged {
                            self.flush_conn(sid);
                        }
                    }
                    Cmd::Shutdown => return Err(()),
                }
            }
        }

        fn register(&mut self, sid: u32, stream: TcpStream, greeting: Vec<u8>) {
            let fd = stream.as_raw_fd();
            if self
                .selector
                .register(fd, sid as u64, Interest::READ)
                .is_err()
            {
                self.inbox.lock().unwrap().entry(sid).or_default().err = true;
                return;
            }
            self.conns.insert(
                sid,
                ShardConn {
                    stream,
                    fd,
                    wr: greeting,
                    want_write: false,
                    done_reading: false,
                },
            );
            self.flush_conn(sid);
        }

        fn handle_io(&mut self, ev: Ready) {
            let sid = ev.token as u32;
            if !self.conns.contains_key(&sid) {
                return;
            }
            if ev.writable {
                self.flush_conn(sid);
            }
            if ev.readable || ev.hangup {
                self.read_conn(sid);
            }
        }

        /// Read whatever the kernel has, up to the inbox soft cap.
        fn read_conn(&mut self, sid: u32) {
            let Some(conn) = self.conns.get_mut(&sid) else {
                return;
            };
            if conn.done_reading || self.paused.contains(&sid) {
                return;
            }
            let fd = conn.fd;
            let mut chunk = [0u8; 8192];
            loop {
                match shim::read_fd(fd, &mut chunk) {
                    Ok(0) => {
                        self.inbox.lock().unwrap().entry(sid).or_default().eof = true;
                        self.retire_read(sid);
                        return;
                    }
                    Ok(n) => {
                        let mut inbox = self.inbox.lock().unwrap();
                        let entry = inbox.entry(sid).or_default();
                        entry.bytes.extend_from_slice(&chunk[..n]);
                        let pending = entry.bytes.len();
                        drop(inbox);
                        if pending >= INBOUND_SOFT_CAP {
                            self.pause_read(sid);
                            return;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.inbox.lock().unwrap().entry(sid).or_default().err = true;
                        self.retire_read(sid);
                        return;
                    }
                }
            }
        }

        /// Write as much backlog as the kernel takes; manage write
        /// interest and the overflow cap.
        fn flush_conn(&mut self, sid: u32) {
            let Some(conn) = self.conns.get_mut(&sid) else {
                return;
            };
            let mut off = 0;
            let mut broken = false;
            while off < conn.wr.len() {
                match shim::write_fd(conn.fd, &conn.wr[off..]) {
                    Ok(0) => break,
                    Ok(n) => off += n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
            conn.wr.drain(..off);
            if broken {
                // Surface like the sweep does: the error shows up as a
                // failed session read on the next drain.
                self.inbox.lock().unwrap().entry(sid).or_default().err = true;
                self.retire_read(sid);
                let Some(conn) = self.conns.get_mut(&sid) else {
                    return;
                };
                conn.wr.clear();
                return;
            }
            if conn.wr.len() > self.max_queued {
                // Backpressure overflow: the client stopped reading.
                // Close here (the notice is best-effort, like the
                // sweep's) and report; the main thread detaches the
                // replication session at its next absorb.
                let notice = std::mem::take(&mut self.overflow_notice);
                self.close_conn(sid, Some(&notice));
                self.overflow_notice = notice;
                self.inbox.lock().unwrap().entry(sid).or_default().overflow = true;
                return;
            }
            let want = !conn.wr.is_empty();
            if want != conn.want_write {
                conn.want_write = want;
                let read = !conn.done_reading && !self.paused.contains(&sid);
                let interest = Interest {
                    readable: read,
                    writable: want,
                };
                let _ = self.selector.rearm(conn.fd, sid as u64, interest);
            }
        }

        fn pause_read(&mut self, sid: u32) {
            if let Some(conn) = self.conns.get(&sid) {
                self.paused.insert(sid);
                let _ = self.selector.rearm(
                    conn.fd,
                    sid as u64,
                    Interest {
                        readable: false,
                        writable: conn.want_write,
                    },
                );
            }
        }

        /// Re-arm reads for paused sessions whose inbox the main thread
        /// has absorbed (runs every loop turn; the pump's wake is the
        /// latest it can trigger, so the pause lasts at most a tick).
        fn resume_paused(&mut self) {
            if self.paused.is_empty() {
                return;
            }
            let inbox = self.inbox.lock().unwrap();
            let resumable: Vec<u32> = self
                .paused
                .iter()
                .copied()
                .filter(|sid| {
                    inbox
                        .get(sid)
                        .map(|e| e.bytes.len() < INBOUND_SOFT_CAP)
                        .unwrap_or(true)
                })
                .collect();
            drop(inbox);
            for sid in resumable {
                self.paused.remove(&sid);
                if let Some(conn) = self.conns.get(&sid) {
                    if !conn.done_reading {
                        let _ = self.selector.rearm(
                            conn.fd,
                            sid as u64,
                            Interest {
                                readable: true,
                                writable: conn.want_write,
                            },
                        );
                    }
                }
            }
        }

        /// Stop reading a session (EOF/error reported) but keep the
        /// socket until the main thread decides to disconnect.
        fn retire_read(&mut self, sid: u32) {
            self.paused.remove(&sid);
            if let Some(conn) = self.conns.get_mut(&sid) {
                if !conn.done_reading {
                    conn.done_reading = true;
                    let _ = self.selector.rearm(
                        conn.fd,
                        sid as u64,
                        Interest {
                            readable: false,
                            writable: conn.want_write,
                        },
                    );
                }
            }
        }

        fn close_conn(&mut self, sid: u32, notice: Option<&[u8]>) {
            self.paused.remove(&sid);
            if let Some(conn) = self.conns.remove(&sid) {
                if let Some(notice) = notice {
                    let _ = shim::write_fd(conn.fd, notice);
                }
                let _ = self.selector.deregister(conn.fd);
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    impl Drop for ShardThread {
        fn drop(&mut self) {
            let sids: Vec<u32> = self.conns.keys().copied().collect();
            for sid in sids {
                self.close_conn(sid, None);
            }
        }
    }

    /// The accept thread: blocks on the listening socket, queues raw
    /// connections for the main thread's `accept_pending` (which still
    /// runs every handshake itself). The queue is capped at the
    /// listener's `max_pending` — a pre-handshake flood is shed here,
    /// exactly like the sweep's accept loop.
    pub(crate) struct AcceptThread {
        pub queue: Arc<Mutex<VecDeque<TcpStream>>>,
        waker: Arc<Waker>,
        stop: Arc<AtomicBool>,
        join: Option<JoinHandle<()>>,
    }

    impl AcceptThread {
        pub fn spawn(
            listener: TcpListener,
            backend: IoBackend,
            cap: usize,
        ) -> std::io::Result<AcceptThread> {
            let mut selector = Selector::new(backend_of(backend))?;
            let waker = Arc::new(Waker::new()?);
            selector.register(waker.fd(), WAKE_TOKEN, Interest::READ)?;
            selector.register(listener.as_raw_fd(), 0, Interest::READ)?;
            let queue: Arc<Mutex<VecDeque<TcpStream>>> = Arc::default();
            let stop = Arc::new(AtomicBool::new(false));
            let (q, w, s) = (queue.clone(), waker.clone(), stop.clone());
            let join = std::thread::Builder::new()
                .name("sgl-io-accept".into())
                .spawn(move || {
                    let mut ready = Vec::new();
                    loop {
                        if selector.wait(-1, &mut ready).is_err() {
                            return;
                        }
                        if s.load(Ordering::Relaxed) {
                            return;
                        }
                        w.drain();
                        loop {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    if stream.set_nonblocking(true).is_err() {
                                        continue;
                                    }
                                    let _ = stream.set_nodelay(true);
                                    let mut q = q.lock().unwrap();
                                    if q.len() < cap {
                                        q.push_back(stream);
                                    }
                                    // else: flood — close instead of queueing.
                                }
                                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                                // Transient accept failures (EMFILE &c):
                                // back off instead of spinning on a
                                // level-triggered listener.
                                Err(_) => {
                                    std::thread::sleep(Duration::from_millis(5));
                                    break;
                                }
                            }
                        }
                    }
                })?;
            Ok(AcceptThread {
                queue,
                waker,
                stop,
                join: Some(join),
            })
        }
    }

    impl Drop for AcceptThread {
        fn drop(&mut self) {
            self.stop.store(true, Ordering::Relaxed);
            self.waker.wake();
            if let Some(join) = self.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_pure_in_sid_and_thread_count() {
        #[cfg(unix)]
        {
            // Same sid → same owner for a fixed thread count, and the
            // owner never exceeds the thread count.
            for threads in [1usize, 2, 3, 4, 7] {
                for sid in 0..200u32 {
                    let a = owner_of(sid, threads);
                    let b = owner_of(sid, threads);
                    assert_eq!(a, b);
                    assert!(a < threads);
                }
            }
            // The virtual shard (sid % VSHARDS) is the only input: two
            // sids in the same vshard land on the same thread always.
            for threads in [1usize, 2, 4] {
                for sid in 0..VSHARDS {
                    assert_eq!(owner_of(sid, threads), owner_of(sid + VSHARDS, threads));
                }
            }
        }
    }

    #[test]
    fn env_config_parses_modes() {
        // Constructors, not the env (tests must not mutate process env).
        assert_eq!(IoConfig::sweep().mode, IoMode::Sweep);
        let r = IoConfig::readiness(4);
        assert_eq!(r.mode, IoMode::Readiness);
        assert_eq!(r.threads, 4);
        assert_eq!(IoConfig::readiness(0).threads, 1);
        assert_eq!(IoConfig::poll_fallback(2).backend, IoBackend::Poll);
        #[cfg(target_os = "linux")]
        assert_eq!(IoConfig::readiness(1).backend, IoBackend::Epoll);
    }
}
