//! Client → server **input frames**: spawn/set/despawn intents.
//!
//! The paper's massive-player endgame treats client input as just
//! another declaratively *validated* update stream — a client does not
//! mutate the world, it states intents, and the server decides. The
//! wire format (`SGI1`) is fully self-describing (values are tagged),
//! so decoding needs no catalog and is hardened exactly like
//! [`wire`](crate::wire) and `sgl_engine::checkpoint`: truncated,
//! bit-flipped, or hostile-count buffers degrade to
//! [`NetError::Corrupt`], never a panic or an allocation bomb.
//!
//! ```text
//! batch  := "SGI1" session:u32 tick:u64 n:u32 intent*
//! intent := 0:u8 req:u32 class:u32 n_over:u16 { col:u16 value }*   (spawn)
//!         | 1:u8 class:u32 id:u64 col:u16 value                    (set)
//!         | 2:u8 class:u32 id:u64                                  (despawn)
//! value  := tagged value (see sgl_engine::codec)
//! ```
//!
//! Validation is a **separate, semantic** step ([`apply_batch`]):
//! a structurally valid intent is still rejected — and counted, without
//! touching the world — when its class or column is unknown, its value
//! type mismatches the schema, or it writes an entity the session does
//! not own. Structural corruption disconnects a session; semantic
//! rejection does not.

use bytes::{BufMut, Bytes, BytesMut};
use sgl_dist::DistSim;
use sgl_engine::codec::{
    check_count, get_u16, get_u32, get_u64, get_u8, get_value, put_u16, put_value,
};
use sgl_engine::{Engine, World};
use sgl_storage::{Catalog, ClassId, EntityId, FxHashSet, ScalarType, Value};

use crate::NetError;

const MAGIC: &[u8; 4] = b"SGI1";

/// One client intent. Attributes are referenced by schema column index
/// (the catalog is shared out of band, like replication frames).
#[derive(Debug, Clone, PartialEq)]
pub enum Intent {
    /// Spawn an entity of `class` with the given attribute overrides.
    /// `req` is a client-chosen token echoed back in the server's
    /// spawn acknowledgement so the client learns the allocated id.
    Spawn {
        /// Client-chosen request token.
        req: u32,
        /// Class to instantiate.
        class: ClassId,
        /// `(column, value)` overrides of the schema defaults.
        values: Vec<(u16, Value)>,
    },
    /// Write one attribute of an entity the session owns.
    Set {
        /// Class of the target (validated against the world).
        class: ClassId,
        /// Target entity.
        id: EntityId,
        /// Schema column index.
        col: u16,
        /// New value (type-checked against the schema).
        value: Value,
    },
    /// Despawn an entity the session owns.
    Despawn {
        /// Class of the target (validated against the world).
        class: ClassId,
        /// Target entity.
        id: EntityId,
    },
}

/// A decoded input frame: who sent it, when (the client's last applied
/// server tick), and what it wants.
#[derive(Debug, Clone, PartialEq)]
pub struct InputBatch {
    /// The sender's session id; the server disconnects a connection
    /// whose frames carry someone else's id.
    pub session: u32,
    /// Client tick stamp: the last server tick the client had applied
    /// when it sent the batch (telemetry / staleness accounting).
    pub tick: u64,
    /// The intents, applied in order.
    pub intents: Vec<Intent>,
}

/// Encode an input batch.
pub fn encode(batch: &InputBatch) -> Bytes {
    let mut buf = BytesMut::with_capacity(32);
    buf.put_slice(MAGIC);
    buf.put_u32_le(batch.session);
    buf.put_u64_le(batch.tick);
    buf.put_u32_le(batch.intents.len() as u32);
    for intent in &batch.intents {
        match intent {
            Intent::Spawn { req, class, values } => {
                buf.put_u8(0);
                buf.put_u32_le(*req);
                buf.put_u32_le(class.0);
                put_u16(&mut buf, values.len() as u16);
                for (col, v) in values {
                    put_u16(&mut buf, *col);
                    put_value(&mut buf, v);
                }
            }
            Intent::Set {
                class,
                id,
                col,
                value,
            } => {
                buf.put_u8(1);
                buf.put_u32_le(class.0);
                buf.put_u64_le(id.0);
                put_u16(&mut buf, *col);
                put_value(&mut buf, value);
            }
            Intent::Despawn { class, id } => {
                buf.put_u8(2);
                buf.put_u32_le(class.0);
                buf.put_u64_le(id.0);
            }
        }
    }
    buf.freeze()
}

/// Decode an input batch. Purely structural — values are tagged, so no
/// catalog is needed; semantic validation happens in [`apply_batch`].
pub fn decode(mut buf: &[u8]) -> Result<InputBatch, NetError> {
    if buf.len() < 4 || &buf[..4] != MAGIC {
        return Err(NetError::Corrupt("bad input magic"));
    }
    buf = &buf[4..];
    let session = get_u32(&mut buf)?;
    let tick = get_u64(&mut buf)?;
    // The smallest intent is a spawn with no overrides:
    // kind + req + class + n_over = 1 + 4 + 4 + 2 = 11 bytes.
    let n = check_count(get_u32(&mut buf)? as u64, buf, 11)?;
    let mut intents = Vec::with_capacity(n);
    for _ in 0..n {
        intents.push(match get_u8(&mut buf)? {
            0 => {
                let req = get_u32(&mut buf)?;
                let class = ClassId(get_u32(&mut buf)?);
                // The smallest override (col + bool) is 4 bytes.
                let n_over = check_count(get_u16(&mut buf)? as u64, buf, 4)?;
                let mut values = Vec::with_capacity(n_over);
                for _ in 0..n_over {
                    let col = get_u16(&mut buf)?;
                    values.push((col, get_value(&mut buf)?));
                }
                Intent::Spawn { req, class, values }
            }
            1 => Intent::Set {
                class: ClassId(get_u32(&mut buf)?),
                id: EntityId(get_u64(&mut buf)?),
                col: get_u16(&mut buf)?,
                value: get_value(&mut buf)?,
            },
            2 => Intent::Despawn {
                class: ClassId(get_u32(&mut buf)?),
                id: EntityId(get_u64(&mut buf)?),
            },
            _ => return Err(NetError::Corrupt("bad intent kind")),
        });
    }
    if !buf.is_empty() {
        return Err(NetError::Corrupt("trailing bytes"));
    }
    Ok(InputBatch {
        session,
        tick,
        intents,
    })
}

/// Anything validated client intents can be applied to: a single
/// [`Engine`] (or bare [`World`]), or a sharded [`DistSim`] whose
/// directory routes each write to the owning node. The facade crate
/// `sgl` implements this for `Simulation` as well.
pub trait InputSink {
    /// The shared catalog intents are validated against.
    fn input_catalog(&self) -> &Catalog;

    /// The class of a live (authoritative, non-ghost) entity.
    fn input_class_of(&self, id: EntityId) -> Option<ClassId>;

    /// Spawn an entity with the given attribute overrides.
    fn input_spawn(&mut self, class: ClassId, values: &[(&str, Value)])
        -> Result<EntityId, String>;

    /// Write one attribute of a live entity.
    fn input_set(&mut self, id: EntityId, attr: &str, v: &Value) -> Result<(), String>;

    /// Despawn a live entity; returns whether it existed.
    fn input_despawn(&mut self, id: EntityId) -> bool;
}

impl InputSink for Engine {
    fn input_catalog(&self) -> &Catalog {
        self.world().catalog()
    }

    fn input_class_of(&self, id: EntityId) -> Option<ClassId> {
        self.world().class_of(id)
    }

    fn input_spawn(
        &mut self,
        class: ClassId,
        values: &[(&str, Value)],
    ) -> Result<EntityId, String> {
        let name = self.world().catalog().class(class).name.clone();
        self.spawn(&name, values).map_err(|e| e.to_string())
    }

    fn input_set(&mut self, id: EntityId, attr: &str, v: &Value) -> Result<(), String> {
        Engine::set(self, id, attr, v).map_err(|e| e.to_string())
    }

    fn input_despawn(&mut self, id: EntityId) -> bool {
        Engine::despawn(self, id)
    }
}

impl InputSink for World {
    fn input_catalog(&self) -> &Catalog {
        self.catalog()
    }

    fn input_class_of(&self, id: EntityId) -> Option<ClassId> {
        self.class_of(id)
    }

    fn input_spawn(
        &mut self,
        class: ClassId,
        values: &[(&str, Value)],
    ) -> Result<EntityId, String> {
        self.spawn(class, values).map_err(|e| e.to_string())
    }

    fn input_set(&mut self, id: EntityId, attr: &str, v: &Value) -> Result<(), String> {
        World::set(self, id, attr, v).map_err(|e| e.to_string())
    }

    fn input_despawn(&mut self, id: EntityId) -> bool {
        match self.class_of(id) {
            Some(class) => self.despawn(class, id),
            None => false,
        }
    }
}

impl InputSink for DistSim {
    fn input_catalog(&self) -> &Catalog {
        &self.game().catalog
    }

    fn input_class_of(&self, id: EntityId) -> Option<ClassId> {
        self.class_of(id)
    }

    fn input_spawn(
        &mut self,
        class: ClassId,
        values: &[(&str, Value)],
    ) -> Result<EntityId, String> {
        let name = self.game().catalog.class(class).name.clone();
        DistSim::spawn(self, &name, values).map_err(|e| e.to_string())
    }

    fn input_set(&mut self, id: EntityId, attr: &str, v: &Value) -> Result<(), String> {
        DistSim::set(self, id, attr, v).map_err(|e| e.to_string())
    }

    fn input_despawn(&mut self, id: EntityId) -> bool {
        DistSim::despawn(self, id)
    }
}

/// What [`apply_batch`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Intents applied to the sink.
    pub applied: u64,
    /// Intents rejected by validation (world untouched by them).
    pub rejected: u64,
    /// Successful spawns: `(req token, allocated id)`, to acknowledge
    /// back to the client.
    pub spawned: Vec<(u32, EntityId)>,
}

/// Validate a decoded batch intent-by-intent against the sink's catalog
/// and the session's owned-entity set, applying the survivors in order.
///
/// The rules, per intent:
/// * the class id must be in catalog range;
/// * every referenced column must exist in the class schema, and the
///   value's type must match it;
/// * `Set`/`Despawn` must target a live entity whose actual class
///   matches the intent's, **and** one the session owns (spawned via a
///   previous intent, or granted by the host);
/// * a sink-level failure (e.g. a cluster refusing a non-numeric
///   partition value) rejects the intent.
///
/// Rejected intents never touch the world and never abort the batch:
/// one hostile client cannot block its own valid traffic, let alone
/// other sessions'.
pub fn apply_batch<S: InputSink>(
    batch: &InputBatch,
    owned: &mut FxHashSet<EntityId>,
    sink: &mut S,
) -> BatchReport {
    let mut report = BatchReport::default();
    for intent in &batch.intents {
        let ok = apply_intent(intent, owned, sink, &mut report.spawned);
        if ok {
            report.applied += 1;
        } else {
            report.rejected += 1;
        }
    }
    report
}

fn check_cell(catalog: &Catalog, class: ClassId, col: u16, v: &Value) -> Option<()> {
    let schema = &catalog.class(class).state;
    if col as usize >= schema.len() {
        return None;
    }
    let expected: ScalarType = schema.col(col as usize).ty;
    if std::mem::discriminant(&v.scalar_type()) != std::mem::discriminant(&expected) {
        return None;
    }
    Some(())
}

fn apply_intent<S: InputSink>(
    intent: &Intent,
    owned: &mut FxHashSet<EntityId>,
    sink: &mut S,
    spawned: &mut Vec<(u32, EntityId)>,
) -> bool {
    let catalog = sink.input_catalog();
    let in_range = |class: ClassId| (class.0 as usize) < catalog.len();
    match intent {
        Intent::Spawn { req, class, values } => {
            if !in_range(*class) {
                return false;
            }
            for (col, v) in values {
                if check_cell(catalog, *class, *col, v).is_none() {
                    return false;
                }
            }
            let schema = &catalog.class(*class).state;
            let names: Vec<String> = values
                .iter()
                .map(|(col, _)| schema.col(*col as usize).name.clone())
                .collect();
            let named: Vec<(&str, Value)> = names
                .iter()
                .zip(values)
                .map(|(name, (_, v))| (name.as_str(), v.clone()))
                .collect();
            match sink.input_spawn(*class, &named) {
                Ok(id) => {
                    owned.insert(id);
                    spawned.push((*req, id));
                    true
                }
                Err(_) => false,
            }
        }
        Intent::Set {
            class,
            id,
            col,
            value,
        } => {
            if !in_range(*class)
                || check_cell(catalog, *class, *col, value).is_none()
                || sink.input_class_of(*id) != Some(*class)
                || !owned.contains(id)
            {
                return false;
            }
            let attr = catalog.class(*class).state.col(*col as usize).name.clone();
            sink.input_set(*id, &attr, value).is_ok()
        }
        Intent::Despawn { class, id } => {
            if !in_range(*class) || sink.input_class_of(*id) != Some(*class) || !owned.contains(id)
            {
                return false;
            }
            owned.remove(id);
            sink.input_despawn(*id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_storage::RefSet;

    fn sample_batch() -> InputBatch {
        InputBatch {
            session: 7,
            tick: 42,
            intents: vec![
                Intent::Spawn {
                    req: 1,
                    class: ClassId(0),
                    values: vec![
                        (0, Value::Number(5.0)),
                        (1, Value::Bool(true)),
                        (3, Value::Set(RefSet::from_ids(vec![EntityId(1)]))),
                    ],
                },
                Intent::Set {
                    class: ClassId(0),
                    id: EntityId(9),
                    col: 2,
                    value: Value::Ref(EntityId(4)),
                },
                Intent::Despawn {
                    class: ClassId(1),
                    id: EntityId(9),
                },
            ],
        }
    }

    #[test]
    fn batch_roundtrip() {
        let batch = sample_batch();
        let bytes = encode(&batch);
        assert_eq!(decode(&bytes).unwrap(), batch);
    }

    /// Regression: a bare spawn (no overrides) is the *smallest* intent
    /// on the wire (11 bytes); the count guard must not assume the
    /// despawn size (13) and reject honest batches of bare spawns.
    #[test]
    fn bare_spawn_batches_roundtrip() {
        for n in [1usize, 3, 7] {
            let batch = InputBatch {
                session: 1,
                tick: 2,
                intents: (0..n)
                    .map(|i| Intent::Spawn {
                        req: i as u32,
                        class: ClassId(0),
                        values: vec![],
                    })
                    .collect(),
            };
            assert_eq!(decode(&encode(&batch)).unwrap(), batch, "{n} bare spawns");
        }
    }

    /// The checkpoint-hardening sweep, applied to the input codec:
    /// every truncation fails, no bit flip panics, hostile counts are
    /// rejected before allocation.
    #[test]
    fn truncations_and_mutations_never_panic() {
        let bytes = encode(&sample_batch());
        for cut in 0..bytes.len() {
            decode(&bytes[..cut]).expect_err("truncation must fail");
        }
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut mutated = bytes.to_vec();
                mutated[pos] ^= flip;
                let _ = decode(&mutated); // must not panic
            }
        }
    }

    #[test]
    fn hostile_counts_rejected_without_allocation() {
        // Intent count far beyond the buffer.
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(MAGIC);
        buf.put_u32_le(0);
        buf.put_u64_le(0);
        buf.put_u32_le(u32::MAX);
        assert_eq!(
            decode(&buf.freeze()),
            Err(NetError::Corrupt("count exceeds buffer"))
        );
        // Spawn override count beyond the buffer.
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(MAGIC);
        buf.put_u32_le(0);
        buf.put_u64_le(0);
        buf.put_u32_le(1);
        buf.put_u8(0); // spawn
        buf.put_u32_le(0); // req
        buf.put_u32_le(0); // class
        buf.put_slice(&u16::MAX.to_le_bytes()); // n_over
        assert_eq!(
            decode(&buf.freeze()),
            Err(NetError::Corrupt("count exceeds buffer"))
        );
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut bytes = encode(&sample_batch()).to_vec();
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(NetError::Corrupt("trailing bytes")));
    }
}
