//! The client side: a [`ClientReplica`] decodes the frame stream and
//! maintains a mirror of the subscribed region that is value-identical
//! to the server's view.

use sgl_storage::{Catalog, ClassId, EntityId, FxHashMap, Value};

use crate::wire::{self, Frame};
use crate::NetError;

/// What one applied frame did to the mirror.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplySummary {
    /// Entities added to the mirror.
    pub enters: usize,
    /// Entities removed from the mirror.
    pub exits: usize,
    /// Cells patched on retained entities.
    pub updated_cells: usize,
}

/// A decoded mirror of the server's subscribed region.
///
/// Strictness: frames are validated against the shared catalog, and
/// *semantic* inconsistencies (an update or exit for an entity the
/// mirror does not hold, or a duplicate enter) are rejected as
/// [`NetError::Corrupt`] rather than papered over — a replica that
/// drifts is a replica that lies.
#[derive(Debug, Clone)]
pub struct ClientReplica {
    catalog: Catalog,
    tick: u64,
    classes: Vec<FxHashMap<EntityId, Vec<Value>>>,
}

impl ClientReplica {
    /// An empty replica for the shared catalog (ship the compiled
    /// game's catalog to clients out of band; frames carry data only).
    pub fn new(catalog: Catalog) -> Self {
        let classes = vec![FxHashMap::default(); catalog.len()];
        ClientReplica {
            catalog,
            tick: 0,
            classes,
        }
    }

    /// The catalog this replica decodes against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Server tick of the last applied frame.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Decode one wire frame and apply it to the mirror.
    pub fn apply(&mut self, bytes: &[u8]) -> Result<ApplySummary, NetError> {
        let frame = wire::decode(bytes, &self.catalog)?;
        self.apply_frame(&frame)
    }

    /// Apply an already-decoded frame.
    pub fn apply_frame(&mut self, frame: &Frame) -> Result<ApplySummary, NetError> {
        let mut summary = ApplySummary::default();
        if frame.baseline {
            for class in &mut self.classes {
                class.clear();
            }
        }
        for (class, delta) in &frame.classes {
            let mirror = &mut self.classes[class.0 as usize];
            for id in &delta.exits {
                if mirror.remove(id).is_none() {
                    return Err(NetError::Corrupt("exit for unknown entity"));
                }
                summary.exits += 1;
            }
            for (id, values) in &delta.enters {
                if mirror.insert(*id, values.clone()).is_some() {
                    return Err(NetError::Corrupt("duplicate enter"));
                }
                summary.enters += 1;
            }
            for (id, cells) in &delta.updates {
                let row = mirror
                    .get_mut(id)
                    .ok_or(NetError::Corrupt("update for unknown entity"))?;
                for (col, v) in cells {
                    row[*col as usize] = v.clone();
                    summary.updated_cells += 1;
                }
            }
        }
        self.tick = frame.tick;
        Ok(summary)
    }

    /// Read one attribute of a mirrored entity.
    pub fn get(&self, class: ClassId, id: EntityId, attr: &str) -> Option<Value> {
        let col = self.catalog.class(class).state.index_of(attr)?;
        self.classes[class.0 as usize]
            .get(&id)
            .map(|row| row[col].clone())
    }

    /// All mirrored values of one entity, in schema column order.
    pub fn row(&self, class: ClassId, id: EntityId) -> Option<&[Value]> {
        self.classes[class.0 as usize]
            .get(&id)
            .map(|r| r.as_slice())
    }

    /// Is the entity currently in the mirror?
    pub fn contains(&self, class: ClassId, id: EntityId) -> bool {
        self.classes[class.0 as usize].contains_key(&id)
    }

    /// Mirrored entities of one class (arbitrary order).
    pub fn entities(&self, class: ClassId) -> impl Iterator<Item = EntityId> + '_ {
        self.classes[class.0 as usize].keys().copied()
    }

    /// Entities mirrored across all classes.
    pub fn population(&self) -> usize {
        self.classes.iter().map(|c| c.len()).sum()
    }

    /// The full mirror of one class, for whole-region comparisons.
    pub fn class_mirror(&self, class: ClassId) -> &FxHashMap<EntityId, Vec<Value>> {
        &self.classes[class.0 as usize]
    }
}
