//! The replication wire format: one compact binary frame per session
//! per tick, in the style of `sgl-engine`'s checkpoint codec (and built
//! on the same bounds-checked [`sgl_engine::codec`] primitives — a
//! truncated or bit-flipped frame decodes to [`NetError::Corrupt`],
//! never a panic).
//!
//! ```text
//! frame  := "SGN1" kind:u8 tick:u64 n_blocks:u32 block*
//! block  := class:u32
//!           n_enter:u32  { id:u64 value[schema.len()] }*
//!           n_update:u32 { id:u64 n_cells:u16 { col:u16 value }* }*
//!           n_exit:u32   { id:u64 }*
//! value  := tagged value (see sgl_engine::codec)
//! ```
//!
//! `kind` 0 is a **baseline**: the receiver clears its mirror before
//! applying (enters carry the full subscribed region). `kind` 1 is a
//! **delta** against the previous frame: enters are entities that came
//! into interest, updates carry *changed cells only*, exits cover both
//! entities that left the area of interest and despawned ones (the
//! receiver treats them identically: forget the entity).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sgl_engine::codec::{
    check_count, get_u16, get_u32, get_u64, get_u8, get_value, put_u16, put_value, value_wire_bytes,
};
use sgl_storage::{Catalog, ClassId, EntityId, Value};

use crate::NetError;

const MAGIC: &[u8; 4] = b"SGN1";

/// Frame kinds.
pub const KIND_BASELINE: u8 = 0;
/// See [`KIND_BASELINE`].
pub const KIND_DELTA: u8 = 1;

/// The per-class payload of one frame.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassDelta {
    /// Entities that entered the area of interest: full rows in schema
    /// column order.
    pub enters: Vec<(EntityId, Vec<Value>)>,
    /// Retained entities with changed attributes: sparse
    /// `(column, value)` cells.
    pub updates: Vec<(EntityId, Vec<(u16, Value)>)>,
    /// Entities that left the area of interest or despawned.
    pub exits: Vec<EntityId>,
}

impl ClassDelta {
    /// Is there anything to ship?
    pub fn is_empty(&self) -> bool {
        self.enters.is_empty() && self.updates.is_empty() && self.exits.is_empty()
    }

    /// Encoded payload size (excluding the class header), used for
    /// per-shard traffic attribution before the frame is assembled.
    pub fn wire_bytes(&self) -> u64 {
        let enters: u64 = self
            .enters
            .iter()
            .map(|(_, vs)| 8 + vs.iter().map(value_wire_bytes).sum::<u64>())
            .sum();
        let updates: u64 = self
            .updates
            .iter()
            .map(|(_, cells)| {
                8 + 2
                    + cells
                        .iter()
                        .map(|(_, v)| 2 + value_wire_bytes(v))
                        .sum::<u64>()
            })
            .sum();
        enters + updates + 8 * self.exits.len() as u64
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Whether this frame is a baseline (receiver clears first).
    pub baseline: bool,
    /// Server tick the frame captures.
    pub tick: u64,
    /// Per-class payloads, keyed by class id.
    pub classes: Vec<(ClassId, ClassDelta)>,
}

/// Encode a frame.
pub fn encode(frame: &Frame) -> Bytes {
    let mut buf = BytesMut::with_capacity(32);
    encode_into(frame, &mut buf);
    buf.freeze()
}

/// Encode a frame by appending to `buf` — the reusable-buffer variant
/// the replication server streams through (`buf.clear()` between
/// frames keeps the allocation; nothing is ever shrunk here).
pub fn encode_into(frame: &Frame, buf: &mut BytesMut) {
    buf.put_slice(MAGIC);
    buf.put_u8(if frame.baseline {
        KIND_BASELINE
    } else {
        KIND_DELTA
    });
    buf.put_u64_le(frame.tick);
    let blocks: Vec<&(ClassId, ClassDelta)> = frame
        .classes
        .iter()
        .filter(|(_, d)| !d.is_empty())
        .collect();
    buf.put_u32_le(blocks.len() as u32);
    for (class, delta) in blocks {
        buf.put_u32_le(class.0);
        buf.put_u32_le(delta.enters.len() as u32);
        for (id, values) in &delta.enters {
            buf.put_u64_le(id.0);
            for v in values {
                put_value(buf, v);
            }
        }
        buf.put_u32_le(delta.updates.len() as u32);
        for (id, cells) in &delta.updates {
            buf.put_u64_le(id.0);
            put_u16(buf, cells.len() as u16);
            for (col, v) in cells {
                put_u16(buf, *col);
                put_value(buf, v);
            }
        }
        buf.put_u32_le(delta.exits.len() as u32);
        for id in &delta.exits {
            buf.put_u64_le(id.0);
        }
    }
}

/// Decode and validate a frame against the shared catalog: class ids
/// and column indexes must be in range, and every value's type must
/// match the schema (a flipped tag must not corrupt a typed mirror).
pub fn decode(mut buf: &[u8], catalog: &Catalog) -> Result<Frame, NetError> {
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(NetError::Corrupt("bad magic"));
    }
    buf.advance(4);
    let baseline = match get_u8(&mut buf)? {
        KIND_BASELINE => true,
        KIND_DELTA => false,
        _ => return Err(NetError::Corrupt("bad frame kind")),
    };
    let tick = get_u64(&mut buf)?;
    // A block is ≥ 16 bytes (class + three counts).
    let n_blocks = check_count(get_u32(&mut buf)? as u64, buf, 16)?;
    let mut classes = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let class = ClassId(get_u32(&mut buf)?);
        if class.0 as usize >= catalog.len() {
            return Err(NetError::Corrupt("class id out of range"));
        }
        let schema = &catalog.class(class).state;
        let mut delta = ClassDelta::default();

        let n_enter = check_count(get_u32(&mut buf)? as u64, buf, 8)?;
        for _ in 0..n_enter {
            let id = EntityId(get_u64(&mut buf)?);
            let mut values = Vec::with_capacity(schema.len());
            for ci in 0..schema.len() {
                let v = get_value(&mut buf)?;
                check_type(&v, schema.col(ci).ty)?;
                values.push(v);
            }
            delta.enters.push((id, values));
        }

        let n_update = check_count(get_u32(&mut buf)? as u64, buf, 10)?;
        for _ in 0..n_update {
            let id = EntityId(get_u64(&mut buf)?);
            let n_cells = check_count(get_u16(&mut buf)? as u64, buf, 4)?;
            let mut cells = Vec::with_capacity(n_cells);
            for _ in 0..n_cells {
                let col = get_u16(&mut buf)?;
                if col as usize >= schema.len() {
                    return Err(NetError::Corrupt("column index out of range"));
                }
                let v = get_value(&mut buf)?;
                check_type(&v, schema.col(col as usize).ty)?;
                cells.push((col, v));
            }
            delta.updates.push((id, cells));
        }

        let n_exit = check_count(get_u32(&mut buf)? as u64, buf, 8)?;
        for _ in 0..n_exit {
            delta.exits.push(EntityId(get_u64(&mut buf)?));
        }
        classes.push((class, delta));
    }
    if buf.remaining() != 0 {
        return Err(NetError::Corrupt("trailing bytes"));
    }
    Ok(Frame {
        baseline,
        tick,
        classes,
    })
}

fn check_type(v: &Value, expected: sgl_storage::ScalarType) -> Result<(), NetError> {
    if std::mem::discriminant(&v.scalar_type()) != std::mem::discriminant(&expected) {
        return Err(NetError::Corrupt("value type mismatches schema"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::two_class_catalog;
    use sgl_storage::RefSet;

    fn sample_frame() -> Frame {
        Frame {
            baseline: false,
            tick: 42,
            classes: vec![
                (
                    ClassId(0),
                    ClassDelta {
                        enters: vec![(
                            EntityId(1),
                            vec![
                                Value::Number(3.5),
                                Value::Bool(true),
                                Value::Ref(EntityId(2)),
                                Value::Set(RefSet::from_ids(vec![EntityId(1), EntityId(2)])),
                            ],
                        )],
                        updates: vec![(EntityId(2), vec![(0, Value::Number(-1.0))])],
                        exits: vec![EntityId(3)],
                    },
                ),
                (ClassId(1), ClassDelta::default()),
            ],
        }
    }

    #[test]
    fn frame_roundtrip_skips_empty_blocks() {
        let cat = two_class_catalog();
        let frame = sample_frame();
        let bytes = encode(&frame);
        let decoded = decode(&bytes, &cat).unwrap();
        assert_eq!(decoded.tick, 42);
        assert!(!decoded.baseline);
        // The empty class 1 block is elided on the wire.
        assert_eq!(decoded.classes.len(), 1);
        assert_eq!(decoded.classes[0], frame.classes[0]);
    }

    #[test]
    fn wire_bytes_matches_encoded_payload() {
        let frame = sample_frame();
        let bytes = encode(&frame);
        let header = 4 + 1 + 8 + 4; // magic, kind, tick, n_blocks
        let block_header = 4 + 3 * 4; // class id + three counts
        let payload: u64 = frame.classes[0].1.wire_bytes();
        assert_eq!(bytes.len() as u64, header + block_header + payload);
    }

    #[test]
    fn truncations_and_mutations_never_panic() {
        let cat = two_class_catalog();
        let bytes = encode(&sample_frame());
        for cut in 0..bytes.len() {
            let _ = decode(&bytes[..cut], &cat).expect_err("truncation must fail");
        }
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut mutated = bytes.to_vec();
                mutated[pos] ^= flip;
                let _ = decode(&mutated, &cat); // must not panic
            }
        }
    }

    #[test]
    fn out_of_range_ids_are_corrupt() {
        let cat = two_class_catalog();
        let mut frame = sample_frame();
        frame.classes[0].0 = ClassId(9);
        assert!(matches!(
            decode(&encode(&frame), &cat),
            Err(NetError::Corrupt("class id out of range"))
        ));
        let mut frame = sample_frame();
        frame.classes[0].1.updates[0].1[0].0 = 99;
        assert!(matches!(
            decode(&encode(&frame), &cat),
            Err(NetError::Corrupt("column index out of range"))
        ));
    }
}
