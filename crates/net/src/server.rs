//! The server side: sessions, interest evaluation, and per-tick delta
//! extraction driven by per-column generation counters.
//!
//! ## Set-at-a-time fan-out
//!
//! With generation tracking on (the default), a poll runs in three
//! stages instead of once per session:
//!
//! 1. **Extract** — one shared [`ExtentDelta`] per (shard, class) whose
//!    generation counters moved, diffed against the server's
//!    [`ExtentSnapshot`] of the previous poll (see
//!    [`changeset`](crate::changeset)). Cost: O(rows of changed
//!    extents), once, no matter how many sessions are attached.
//! 2. **Route** — a session interest index (an
//!    [`IntervalSet`](sgl_index::IntervalSet) per (class, attribute)
//!    over the sessions' declared windows) is stabbed with each delta's
//!    value bounds; only sessions whose window overlaps something that
//!    actually changed are visited ([`NetStats::sessions_visited`] vs
//!    [`NetStats::sessions_skipped`]).
//! 3. **Project** — each visited session diffs the *delta rows* (not
//!    the extent) against its mirror and encodes its frame into a
//!    reused per-session buffer. Skipped sessions share one
//!    pre-encoded empty frame.
//!
//! Baselines, live re-subscriptions, and the `use_generations: false`
//! reference mode take the per-session full-scan path instead; the
//! frames are bit-identical either way (`tests/replication.rs` holds
//! the two modes against each other on random traces).

use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use sgl_dist::DistSim;
use sgl_engine::codec::value_wire_bytes;
use sgl_engine::{Engine, WorkerPool, World};
use sgl_index::IntervalSet;
use sgl_storage::{Catalog, ClassId, EntityId, FxHashMap, FxHashSet, Table, Value};

use crate::changeset::{self, ExtentDelta, ExtentSnapshot};
use crate::interest::{InterestSpec, ResolvedInterest};
use crate::stats::{NetStats, SessionStats};
use crate::wire::{self, ClassDelta, Frame};
use crate::NetError;

/// Handle of an attached session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u32);

/// Anything a [`ReplicationServer`] can replicate from: a single
/// [`World`] / [`Engine`], or a sharded [`DistSim`] whose stripes the
/// server fans subscriptions out across. The facade crate `sgl`
/// implements this for `Simulation` as well.
pub trait ReplicationSource {
    /// The shared catalog (must match the server's).
    fn catalog(&self) -> &Catalog;

    /// Number of shards (1 for single-node sources).
    fn shards(&self) -> usize {
        1
    }

    /// Shard `k`'s world. Rows marked as ghosts are replicas owned by
    /// another shard and are ignored by replication.
    fn shard_world(&self, k: usize) -> &World;

    /// Current tick of the source.
    fn source_tick(&self) -> u64;

    /// Could shard `k` own entities of `class` whose `attr` value lies
    /// within `[lo, hi]`? `false` prunes the shard from a session's
    /// fan-out. The default (`true`) is always sound.
    fn shard_may_own(&self, _k: usize, _class: ClassId, _attr: &str, _lo: f64, _hi: f64) -> bool {
        true
    }
}

impl ReplicationSource for World {
    fn catalog(&self) -> &Catalog {
        World::catalog(self)
    }

    fn shard_world(&self, _k: usize) -> &World {
        self
    }

    fn source_tick(&self) -> u64 {
        self.tick()
    }
}

impl ReplicationSource for Engine {
    fn catalog(&self) -> &Catalog {
        self.world().catalog()
    }

    fn shard_world(&self, _k: usize) -> &World {
        self.world()
    }

    fn source_tick(&self) -> u64 {
        self.world().tick()
    }
}

impl ReplicationSource for DistSim {
    fn catalog(&self) -> &Catalog {
        &self.game().catalog
    }

    fn shards(&self) -> usize {
        self.config().nodes
    }

    fn shard_world(&self, k: usize) -> &World {
        self.node_world(k)
    }

    fn source_tick(&self) -> u64 {
        self.node_world(0).tick()
    }

    fn shard_may_own(&self, k: usize, class: ClassId, attr: &str, lo: f64, hi: f64) -> bool {
        let part = &self.config().partition_attr;
        let partitioned = self
            .game()
            .catalog
            .class(class)
            .state
            .index_of(part)
            .is_some();
        if !partitioned {
            // Classes without the partition attribute live on node 0.
            return k == 0;
        }
        if attr != part {
            // Range over some other attribute: stripes say nothing.
            return true;
        }
        let (slo, shi) = self.stripe_range(k);
        // Owned rows sit inside their stripe between steps, so a shard
        // whose stripe misses the window cannot contribute.
        slo <= hi && lo < shi
    }
}

/// Replication configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Use per-column generation counters to extract one shared
    /// changeset per tick and route it through the interest index (the
    /// default). `false` forces the per-session full-scan baseline —
    /// only useful for benchmarking (and testing) the difference.
    pub use_generations: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            use_generations: true,
        }
    }
}

/// Per-session server state: what the client is known to hold.
struct SessionState {
    interest: ResolvedInterest,
    /// A pending live re-subscription's *previous* interest: exits may
    /// live on shards only the old window overlapped, so the diff frame
    /// scans the union of both windows. Cleared when the frame commits.
    resub_from: Option<ResolvedInterest>,
    /// Per class: id → (source shard, values in schema order). This is
    /// the server's model of the client mirror; deltas are diffs
    /// against it.
    mirror: Vec<FxHashMap<EntityId, (usize, Vec<Value>)>>,
    /// Shard count of the source this session last committed against
    /// (0 = never). A mismatch means the source shape changed under the
    /// session — mirror entries are tagged with shard indexes of the
    /// old shape, so the session resynchronizes with a fresh baseline.
    shards_seen: usize,
    baseline_sent: bool,
    stats: SessionStats,
    /// Reused wire-encode buffer: one allocation per session, not one
    /// per session per tick.
    enc: BytesMut,
}

impl SessionState {
    fn new(interest: ResolvedInterest, classes: usize) -> Self {
        SessionState {
            interest,
            resub_from: None,
            mirror: vec![FxHashMap::default(); classes],
            shards_seen: 0,
            baseline_sent: false,
            stats: SessionStats::default(),
            enc: BytesMut::with_capacity(64),
        }
    }

    /// Can this session consume the shared changeset, or does it need a
    /// full scan (baseline, pending resubscription, shape change)?
    fn caught_up(&self, shards: usize) -> bool {
        self.baseline_sent && self.resub_from.is_none() && self.shards_seen == shards
    }
}

/// The session interest index: per (class, interest attribute), the
/// live sessions' declared windows in an [`IntervalSet`]. Rebuilt
/// lazily after attach / detach / resubscribe — churn is rare next to
/// the per-tick stab traffic.
#[derive(Default)]
struct InterestIndex {
    dirty: bool,
    groups: Vec<IndexGroup>,
    /// Classes in demand with their interest attributes (ascending,
    /// deduped) — derived from `groups` at rebuild so the per-poll
    /// extraction loop does no per-class work of its own.
    demanded: Vec<(ClassId, Vec<usize>)>,
}

struct IndexGroup {
    class: ClassId,
    attr_col: usize,
    /// Session slot per interval entry (parallel to `windows`).
    slots: Vec<u32>,
    windows: IntervalSet,
}

/// Accumulator entry while rebuilding: session slots + their windows.
type GroupAcc = (Vec<u32>, Vec<(f64, f64)>);

impl InterestIndex {
    fn rebuild(&mut self, sessions: &[Option<SessionState>]) {
        let mut acc: FxHashMap<(u32, usize), GroupAcc> = FxHashMap::default();
        for (slot, session) in sessions.iter().enumerate() {
            let Some(session) = session else { continue };
            for (class_idx, col) in session.interest.attr_cols.iter().enumerate() {
                let Some(col) = col else { continue };
                let entry = acc.entry((class_idx as u32, *col)).or_default();
                entry.0.push(slot as u32);
                entry
                    .1
                    .push((session.interest.spec.lo, session.interest.spec.hi));
            }
        }
        let mut groups: Vec<_> = acc.into_iter().collect();
        groups.sort_unstable_by_key(|&((class, col), _)| (class, col));
        self.groups = groups
            .into_iter()
            .map(|((class, attr_col), (slots, windows))| IndexGroup {
                class: ClassId(class),
                attr_col,
                slots,
                windows: IntervalSet::build(&windows),
            })
            .collect();
        self.demanded.clear();
        for group in &self.groups {
            match self.demanded.last_mut() {
                Some((class, attrs)) if *class == group.class => attrs.push(group.attr_col),
                _ => self.demanded.push((group.class, vec![group.attr_col])),
            }
        }
        self.dirty = false;
    }
}

/// The replication server: attaches client sessions to a simulation (or
/// a cluster) and streams per-tick deltas of each session's declared
/// area of interest.
pub struct ReplicationServer {
    catalog: Catalog,
    cfg: NetConfig,
    sessions: Vec<Option<SessionState>>,
    /// Freed session slots, reused by `attach`.
    free: Vec<u32>,
    /// Server-wide extent snapshots of the last committed poll:
    /// `prev[shard][class]` (generation-mode only).
    prev: Vec<Vec<Option<ExtentSnapshot>>>,
    index: InterestIndex,
    last: NetStats,
    /// Worker pool for the shared changeset extraction (stage 1).
    /// `None` (the default) keeps extraction serial; callers replicating
    /// from a parallel engine or cluster hand in that engine's pool via
    /// [`ReplicationServer::set_pool`] so the process keeps one pool.
    pool: Option<Arc<WorkerPool>>,
}

impl ReplicationServer {
    /// A server for sources sharing `catalog`.
    pub fn new(catalog: Catalog) -> Self {
        Self::with_config(catalog, NetConfig::default())
    }

    /// A server with explicit [`NetConfig`].
    pub fn with_config(catalog: Catalog, cfg: NetConfig) -> Self {
        ReplicationServer {
            catalog,
            cfg,
            sessions: Vec::new(),
            free: Vec::new(),
            prev: Vec::new(),
            index: InterestIndex::default(),
            last: NetStats::default(),
            pool: None,
        }
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Fan stage-1 changeset extraction out over `pool` (normally the
    /// source engine's own pool — e.g. `engine.pool().clone()` — so the
    /// process keeps a single set of worker threads). Extraction results
    /// are folded in work-item order, so frames are bit-identical to
    /// serial polling. Sessions-side projection stays serial: it is
    /// per-session mutable state.
    pub fn set_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// Attach a session with the given interest subscription. The first
    /// poll sends it a baseline snapshot of the subscribed region.
    /// Slots freed by [`ReplicationServer::detach`] are reused, so a
    /// long-lived server with session churn stays compact.
    pub fn attach(&mut self, spec: &InterestSpec) -> Result<SessionId, NetError> {
        let interest = spec.resolve(&self.catalog)?;
        let state = SessionState::new(interest, self.catalog.len());
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.sessions[slot as usize].is_none());
                self.sessions[slot as usize] = Some(state);
                slot
            }
            None => {
                self.sessions.push(Some(state));
                (self.sessions.len() - 1) as u32
            }
        };
        self.index.dirty = true;
        Ok(SessionId(slot))
    }

    /// Parse-and-attach convenience: see [`InterestSpec`] for the
    /// predicate syntax, e.g. `"Player where x in [120, 480]"`.
    pub fn attach_str(&mut self, spec: &str) -> Result<SessionId, NetError> {
        self.attach(&spec.parse::<InterestSpec>()?)
    }

    /// Detach a session. Its slot (and id) goes on a free list for the
    /// next [`ReplicationServer::attach`]; a stale `SessionId` held
    /// after detaching may therefore alias a *newer* session — drop it.
    pub fn detach(&mut self, sid: SessionId) -> bool {
        match self.sessions.get_mut(sid.0 as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.free.push(sid.0);
                self.index.dirty = true;
                true
            }
            _ => false,
        }
    }

    /// Atomically swap a live session's interest subscription. The
    /// session's next frame is a *delta* covering the symmetric
    /// difference: exits for mirrored entities outside the new window,
    /// enters for newly covered ones, updates for the intersection —
    /// no baseline, no mirror reset.
    pub fn resubscribe(&mut self, sid: SessionId, spec: &InterestSpec) -> Result<(), NetError> {
        let interest = spec.resolve(&self.catalog)?;
        let session = self
            .sessions
            .get_mut(sid.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or_else(|| NetError::Refused(format!("no session {}", sid.0)))?;
        if session.baseline_sent && session.resub_from.is_none() {
            // Remember the window the last committed frame was built
            // with; repeated swaps before a poll keep the oldest.
            session.resub_from = Some(std::mem::replace(&mut session.interest, interest));
        } else {
            session.interest = interest;
        }
        self.index.dirty = true;
        Ok(())
    }

    /// Attached sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.iter().flatten().count()
    }

    /// Cumulative statistics of one session.
    pub fn session_stats(&self, sid: SessionId) -> Option<&SessionStats> {
        self.sessions
            .get(sid.0 as usize)
            .and_then(|s| s.as_ref())
            .map(|s| &s.stats)
    }

    /// Mutable statistics access for the transport layer (input and
    /// backpressure counters live next to the replication counters).
    pub(crate) fn session_stats_mut(&mut self, sid: SessionId) -> Option<&mut SessionStats> {
        self.sessions
            .get_mut(sid.0 as usize)
            .and_then(|s| s.as_mut())
            .map(|s| &mut s.stats)
    }

    /// The interest subscription of an attached session (the *new* one,
    /// if a resubscription is pending).
    pub fn session_interest(&self, sid: SessionId) -> Option<&InterestSpec> {
        self.sessions
            .get(sid.0 as usize)
            .and_then(|s| s.as_ref())
            .map(|s| &s.interest.spec)
    }

    /// Statistics of the last [`ReplicationServer::poll`].
    pub fn last_stats(&self) -> &NetStats {
        &self.last
    }

    /// Compute and commit this tick's frame for every session. Call
    /// once per simulation tick, after stepping the source. Each
    /// session's first frame is a baseline snapshot; subsequent frames
    /// are deltas (enter / changed-cells / exit+despawn).
    pub fn poll<S: ReplicationSource>(&mut self, src: &S) -> Vec<(SessionId, Bytes)> {
        let mut out = Vec::with_capacity(self.session_count());
        self.poll_inner(src, true, &mut |sid, bytes| {
            out.push((sid, Bytes::from(bytes.to_vec())));
        });
        out
    }

    /// [`ReplicationServer::poll`] without the per-frame allocations:
    /// each session's encoded frame is handed to `emit` as a borrow of
    /// a reused buffer. This is the path the TCP listener pumps through
    /// (frames go straight into per-socket send queues).
    pub fn poll_with<S, F>(&mut self, src: &S, mut emit: F)
    where
        S: ReplicationSource,
        F: FnMut(SessionId, &[u8]),
    {
        self.poll_inner(src, true, &mut emit);
    }

    /// Compute this tick's frames *without* committing them (session
    /// mirrors, extent snapshots, and statistics stay untouched), so
    /// repeated calls do identical work. For benchmarks and
    /// diagnostics; real streaming uses [`ReplicationServer::poll`].
    pub fn preview<S: ReplicationSource>(&mut self, src: &S) -> Vec<(SessionId, Bytes)> {
        let mut out = Vec::with_capacity(self.session_count());
        self.poll_inner(src, false, &mut |sid, bytes| {
            out.push((sid, Bytes::from(bytes.to_vec())));
        });
        out
    }

    fn poll_inner<S: ReplicationSource>(
        &mut self,
        src: &S,
        commit: bool,
        emit: &mut dyn FnMut(SessionId, &[u8]),
    ) {
        debug_assert_eq!(
            src.catalog().len(),
            self.catalog.len(),
            "source catalog mismatch"
        );
        let shards = src.shards();
        let mut stats = NetStats {
            tick: src.source_tick(),
            sessions: self.session_count(),
            ..NetStats::default()
        };

        // A source shape change invalidates everything tagged with
        // shard indexes: the server snapshots and every session mirror.
        if self.prev.len() != shards {
            self.prev = (0..shards)
                .map(|_| (0..self.catalog.len()).map(|_| None).collect())
                .collect();
        }
        for session in self.sessions.iter_mut().flatten() {
            if session.shards_seen != 0 && session.shards_seen != shards {
                for mirror in &mut session.mirror {
                    mirror.clear();
                }
                session.baseline_sent = false;
                session.resub_from = None;
                session.shards_seen = 0;
            }
        }

        if self.cfg.use_generations {
            self.poll_shared(src, shards, commit, emit, &mut stats);
        } else {
            // Reference mode: every session scans every tick.
            for slot in 0..self.sessions.len() {
                let Some(session) = self.sessions[slot].as_mut() else {
                    continue;
                };
                stats.sessions_visited += 1;
                encode_session_scan(&self.catalog, session, src, commit, &mut stats);
                if commit {
                    session.shards_seen = shards;
                }
                emit(
                    SessionId(slot as u32),
                    &self.sessions[slot].as_ref().unwrap().enc,
                );
            }
        }

        if commit {
            self.last = stats;
        }
    }

    /// The generation-mode poll: extract → route → project.
    fn poll_shared<S: ReplicationSource>(
        &mut self,
        src: &S,
        shards: usize,
        commit: bool,
        emit: &mut dyn FnMut(SessionId, &[u8]),
        stats: &mut NetStats,
    ) {
        if self.index.dirty {
            self.index.rebuild(&self.sessions);
        }

        // Stage 1: extract one shared delta per changed extent. Only
        // classes some session subscribes are in demand (the cached
        // list the index rebuild derived); an extent with no snapshot
        // yet contributes nothing (no session can be caught up on it —
        // its baseline poll is what installs the snapshot). The cheap
        // generation compare collects work items serially; the actual
        // row diffs are independent reads and fan out over the pool
        // when one was provided, folded back in item order so the delta
        // list — and every frame built from it — is bit-identical to a
        // serial poll.
        let mut items: Vec<(ClassId, &Vec<usize>, usize, &ExtentSnapshot)> = Vec::new();
        for &(class, ref attrs) in &self.index.demanded {
            for k in 0..shards {
                let table = src.shard_world(k).table(class);
                match &self.prev[k][class.0 as usize] {
                    Some(snap) if snap.gens.as_slice() == table.col_gens() => {
                        stats.skipped_scans += 1;
                    }
                    Some(snap) => {
                        stats.scanned += 1;
                        items.push((class, attrs, k, snap));
                    }
                    None => {}
                }
            }
        }
        let extracted: Vec<ExtentDelta> = match self.pool.as_deref() {
            Some(pool) if !pool.is_serial() && items.len() > 1 => {
                let worlds: Vec<&World> = (0..shards).map(|k| src.shard_world(k)).collect();
                let items = &items;
                let (out, rs) = pool.run(items.len(), |i| {
                    let (class, attrs, k, snap) = items[i];
                    changeset::diff(worlds[k], class, k, snap, attrs)
                });
                stats.parallel.absorb(&rs);
                out
            }
            _ => items
                .iter()
                .map(|&(class, attrs, k, snap)| {
                    changeset::diff(src.shard_world(k), class, k, snap, attrs)
                })
                .collect(),
        };
        let deltas: Vec<ExtentDelta> = extracted.into_iter().filter(|d| !d.is_empty()).collect();

        // Stage 2: route deltas to sessions through the interest index.
        // `touched[slot]` collects delta indexes in extraction order
        // (class-major, shard-minor) — the projection order.
        let mut touched: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
        let mut hits: Vec<u32> = Vec::new();
        for (di, delta) in deltas.iter().enumerate() {
            for group in self.index.groups.iter().filter(|g| g.class == delta.class) {
                let Some(&(_, blo, bhi)) = delta.bounds.iter().find(|b| b.0 == group.attr_col)
                else {
                    continue;
                };
                if blo > bhi {
                    continue; // nothing relevant carried a comparable value
                }
                hits.clear();
                group.windows.overlapping(blo, bhi, &mut hits);
                for &h in &hits {
                    touched.entry(group.slots[h as usize]).or_default().push(di);
                }
            }
        }

        // Stage 3: project. Skipped sessions share one empty frame.
        let mut empty = BytesMut::with_capacity(32);
        wire::encode_into(
            &Frame {
                baseline: false,
                tick: src.source_tick(),
                classes: Vec::new(),
            },
            &mut empty,
        );
        for slot in 0..self.sessions.len() {
            let Some(session) = self.sessions[slot].as_mut() else {
                continue;
            };
            let sid = SessionId(slot as u32);
            if !session.caught_up(shards) {
                stats.sessions_visited += 1;
                encode_session_scan(&self.catalog, session, src, commit, stats);
                if commit {
                    session.shards_seen = shards;
                }
            } else if let Some(dis) = touched.get(&(slot as u32)) {
                stats.sessions_visited += 1;
                project_session(session, src, &deltas, dis, shards, commit, stats);
            } else {
                stats.sessions_skipped += 1;
                stats.frames += 1;
                stats.client_traffic.msgs += 1;
                stats.client_traffic.bytes += empty.len() as u64;
                if commit {
                    session.stats.frames += 1;
                    session.stats.bytes += empty.len() as u64;
                }
                emit(sid, &empty);
                continue;
            }
            emit(sid, &self.sessions[slot].as_ref().unwrap().enc);
        }

        // Refresh the extent snapshots the next poll will diff against,
        // and drop snapshots of classes no session subscribes anymore —
        // a stale snapshot pins Arc clones of column data for no
        // reader (a fresh one is installed by the next subscriber's
        // baseline poll).
        if commit {
            let mut wanted = vec![false; self.catalog.len()];
            for &(class, _) in &self.index.demanded {
                wanted[class.0 as usize] = true;
            }
            for k in 0..shards {
                let world = src.shard_world(k);
                for (class_idx, slot) in self.prev[k].iter_mut().enumerate() {
                    if !wanted[class_idx] {
                        *slot = None;
                        continue;
                    }
                    let class = ClassId(class_idx as u32);
                    let stale = match slot {
                        Some(snap) => snap.gens.as_slice() != world.table(class).col_gens(),
                        None => true,
                    };
                    if stale {
                        *slot = Some(changeset::refresh(world, class, slot.take()));
                    }
                }
            }
        }
    }
}

/// Cell-level change detection, bitwise for numbers: a NaN cell must
/// compare equal to its mirrored copy (IEEE `NaN != NaN` would re-ship
/// it on every scan forever).
fn value_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// Is `id` alive (present and authoritative) anywhere in the source?
/// Distinguishes an exit (left the area of interest) from a despawn.
fn alive_anywhere<S: ReplicationSource>(
    src: &S,
    shards: usize,
    class: ClassId,
    id: EntityId,
) -> bool {
    (0..shards).any(|k| {
        let w = src.shard_world(k);
        w.table(class).row_of(id).is_some() && !w.is_ghost(class, id)
    })
}

// The row-encoding + traffic-accounting arms below are shared by the
// changeset projection and the full-scan path: the oracle tests hold
// the two paths bit-identical, so the wire accounting must live in
// exactly one place.

/// An entity entered the area of interest: ship the full row.
fn push_enter(
    table: &Table,
    row: usize,
    id: EntityId,
    shard: usize,
    shard_bytes: &mut [u64],
    delta: &mut ClassDelta,
) {
    let values: Vec<Value> = (0..table.schema().len())
        .map(|ci| table.column(ci).get(row))
        .collect();
    shard_bytes[shard] += 8 + values.iter().map(value_wire_bytes).sum::<u64>();
    delta.enters.push((id, values));
}

/// A retained entity: ship its changed cells, if any.
fn push_update(
    id: EntityId,
    cells: Vec<(u16, Value)>,
    shard: usize,
    shard_bytes: &mut [u64],
    delta: &mut ClassDelta,
) {
    if cells.is_empty() {
        return;
    }
    shard_bytes[shard] += 8
        + 2
        + cells
            .iter()
            .map(|(_, v)| 2 + value_wire_bytes(v))
            .sum::<u64>();
    delta.updates.push((id, cells));
}

/// Emit a class's session exits (pre-sorted by id), classifying each
/// as a window exit or a despawn.
fn push_exits<S: ReplicationSource>(
    src: &S,
    shards: usize,
    class: ClassId,
    exits: Vec<(EntityId, usize)>,
    shard_bytes: &mut [u64],
    delta: &mut ClassDelta,
    stats: &mut NetStats,
) {
    for (id, shard) in exits {
        if alive_anywhere(src, shards, class, id) {
            stats.exits += 1;
        } else {
            stats.despawns += 1;
        }
        shard_bytes[shard] += 8;
        delta.exits.push(id);
    }
}

/// Fold one frame's byte count (and, on clusters, the per-shard payload
/// contributions) into the poll statistics.
fn account_frame(stats: &mut NetStats, frame_len: usize, shards: usize, shard_bytes: &[u64]) {
    stats.frames += 1;
    stats.client_traffic.msgs += 1;
    stats.client_traffic.bytes += frame_len as u64;
    if shards > 1 {
        for &b in shard_bytes.iter().filter(|&&b| b > 0) {
            stats.fanout.msgs += 1;
            stats.fanout.bytes += b;
        }
    }
}

/// Commit one emitted frame to the session's model of the client.
/// `frame_classes` is consumed — entered rows move into the mirror
/// without a second clone.
fn commit_frame(
    session: &mut SessionState,
    frame_classes: Vec<(ClassId, ClassDelta)>,
    shard_tags: Vec<(ClassId, EntityId, usize)>,
) {
    session.baseline_sent = true;
    session.resub_from = None;
    session.stats.frames += 1;
    session.stats.bytes += session.enc.len() as u64;
    for (class, delta) in frame_classes {
        let mirror = &mut session.mirror[class.0 as usize];
        for id in delta.exits {
            mirror.remove(&id);
            session.stats.exits += 1;
        }
        for (id, values) in delta.enters {
            mirror.insert(id, (0, values));
            session.stats.enters += 1;
        }
        for (id, cells) in delta.updates {
            let entry = mirror.get_mut(&id).expect("update targets mirrored id");
            for (col, v) in cells {
                entry.1[col as usize] = v;
                session.stats.updated_cells += 1;
            }
        }
    }
    for (class, id, shard) in shard_tags {
        if let Some(entry) = session.mirror[class.0 as usize].get_mut(&id) {
            entry.0 = shard;
        }
    }
}

/// One delta row inside a session's window during projection:
/// `(id, delta index, current row, changed-cell range if retained)`.
type PresentRow = (EntityId, usize, u32, Option<(u32, u32)>);

/// Project the shared changeset onto one caught-up session: diff the
/// delta rows (only) against the session mirror and encode the frame
/// into the session's reused buffer.
fn project_session<S: ReplicationSource>(
    session: &mut SessionState,
    src: &S,
    deltas: &[ExtentDelta],
    touched: &[usize],
    shards: usize,
    commit: bool,
    stats: &mut NetStats,
) {
    let spec = &session.interest.spec;
    let mut classes: Vec<(ClassId, ClassDelta)> = Vec::new();
    let mut shard_bytes: Vec<u64> = vec![0; shards];
    let mut shard_tags: Vec<(ClassId, EntityId, usize)> = Vec::new();

    // `touched` is class-major (extraction order): process each class's
    // run of extents together so cross-shard migrations merge.
    let mut i = 0;
    while i < touched.len() {
        let class = deltas[touched[i]].class;
        let mut j = i;
        while j < touched.len() && deltas[touched[j]].class == class {
            j += 1;
        }
        let attr_col = session.interest.attr_cols[class.0 as usize]
            .expect("routed session subscribes the class");
        let mirror = &session.mirror[class.0 as usize];

        // In-range membership among the delta rows, plus mirrored ids
        // that dropped out (moved out of range, or left their extent).
        let mut present: Vec<PresentRow> = Vec::new();
        let mut dropped: FxHashSet<EntityId> = FxHashSet::default();
        for &di in &touched[i..j] {
            let delta = &deltas[di];
            let table = src.shard_world(delta.shard).table(class);
            let xs = table.column(attr_col).f64();
            for &row in &delta.enters {
                if spec.contains(xs[row as usize]) {
                    present.push((table.id_at(row as usize), di, row, None));
                }
            }
            for &(row, start, end) in &delta.changed {
                let id = table.id_at(row as usize);
                if spec.contains(xs[row as usize]) {
                    present.push((id, di, row, Some((start, end))));
                } else if mirror.contains_key(&id) {
                    dropped.insert(id);
                }
            }
            for &(id, _) in &delta.exits {
                if mirror.contains_key(&id) {
                    dropped.insert(id);
                }
            }
        }
        present.sort_unstable_by_key(|&(id, ..)| id);

        let mut delta_out = ClassDelta::default();
        let mut present_ids: FxHashSet<EntityId> = FxHashSet::default();
        for &(id, di, row, cells) in &present {
            present_ids.insert(id);
            let shard = deltas[di].shard;
            let table = src.shard_world(shard).table(class);
            let row = row as usize;
            match mirror.get(&id) {
                None => {
                    push_enter(table, row, id, shard, &mut shard_bytes, &mut delta_out);
                    shard_tags.push((class, id, shard));
                }
                Some((_, known)) => {
                    // Retained: ship changed cells only. For a `changed`
                    // delta row the extraction already found them; a
                    // cross-shard migration (an extent *enter* of a
                    // mirrored id) diffs the full row against the
                    // mirror instead.
                    let mut out: Vec<(u16, Value)> = Vec::new();
                    match cells {
                        Some((start, end)) => {
                            for &ci in &deltas[di].cells[start as usize..end as usize] {
                                let v = table.column(ci as usize).get(row);
                                if !value_identical(&known[ci as usize], &v) {
                                    out.push((ci, v));
                                }
                            }
                        }
                        None => {
                            for (ci, kv) in known.iter().enumerate() {
                                let v = table.column(ci).get(row);
                                if !value_identical(kv, &v) {
                                    out.push((ci as u16, v));
                                }
                            }
                        }
                    }
                    push_update(id, out, shard, &mut shard_bytes, &mut delta_out);
                    shard_tags.push((class, id, shard));
                }
            }
        }

        let mut exits: Vec<(EntityId, usize)> = dropped
            .into_iter()
            .filter(|id| !present_ids.contains(id))
            .map(|id| (id, mirror.get(&id).expect("dropped ids are mirrored").0))
            .collect();
        exits.sort_unstable_by_key(|&(id, _)| id);
        push_exits(
            src,
            shards,
            class,
            exits,
            &mut shard_bytes,
            &mut delta_out,
            stats,
        );

        stats.enters += delta_out.enters.len() as u64;
        stats.updated_cells += delta_out
            .updates
            .iter()
            .map(|(_, c)| c.len() as u64)
            .sum::<u64>();
        if !delta_out.is_empty() {
            classes.push((class, delta_out));
        }
        i = j;
    }

    let frame = Frame {
        baseline: false,
        tick: src.source_tick(),
        classes,
    };
    session.enc.clear();
    wire::encode_into(&frame, &mut session.enc);
    account_frame(stats, session.enc.len(), shards, &shard_bytes);
    if commit {
        commit_frame(session, frame.classes, shard_tags);
    }
}

/// The per-session full-scan path: baselines, pending resubscriptions,
/// and the `use_generations: false` reference mode. Scans the
/// subscribed region directly and diffs it against the mirror.
fn encode_session_scan<S: ReplicationSource>(
    catalog: &Catalog,
    session: &mut SessionState,
    src: &S,
    commit: bool,
    stats: &mut NetStats,
) {
    let shards = src.shards();
    let baseline = !session.baseline_sent;
    let spec = session.interest.spec.clone();
    let old = session.resub_from.clone();
    let mut classes: Vec<(ClassId, ClassDelta)> = Vec::new();
    let mut shard_bytes: Vec<u64> = vec![0; shards];
    let mut shard_tags: Vec<(ClassId, EntityId, usize)> = Vec::new();

    for cdef in catalog.classes() {
        let class = cdef.id;
        let new_col = session.interest.attr_cols[class.0 as usize];
        let old_col = old.as_ref().and_then(|o| o.attr_cols[class.0 as usize]);
        if new_col.is_none() && old_col.is_none() {
            continue;
        }
        // Scan shards that may own rows in the new window (enters,
        // updates) or may have owned rows in the old one (exits of a
        // pending resubscription).
        let scanned: Vec<usize> = (0..shards)
            .filter(|&k| {
                (new_col.is_some() && src.shard_may_own(k, class, &spec.attr, spec.lo, spec.hi))
                    || old.as_ref().is_some_and(|o| {
                        old_col.is_some()
                            && src.shard_may_own(k, class, &o.spec.attr, o.spec.lo, o.spec.hi)
                    })
            })
            .collect();
        stats.scanned += scanned.len() as u64;
        if scanned.is_empty() {
            continue;
        }

        // Pass 1: current in-interest membership on the scanned shards.
        let mut seen: FxHashMap<EntityId, (usize, u32)> = FxHashMap::default();
        if let Some(attr_col) = new_col {
            for &k in &scanned {
                let world = src.shard_world(k);
                let table = world.table(class);
                let xs = table.column(attr_col).f64();
                for (row, &id) in table.ids().iter().enumerate() {
                    if !spec.contains(xs[row]) || world.is_ghost(class, id) {
                        continue;
                    }
                    seen.insert(id, (k, row as u32));
                }
            }
        }

        // Pass 2: diff against the session mirror.
        let mut delta = ClassDelta::default();
        let mirror = &session.mirror[class.0 as usize];
        let mut ordered: Vec<(EntityId, (usize, u32))> =
            seen.iter().map(|(&id, &at)| (id, at)).collect();
        ordered.sort_unstable_by_key(|(id, _)| *id);
        for (id, (shard, row)) in ordered {
            let table = src.shard_world(shard).table(class);
            let row = row as usize;
            match mirror.get(&id) {
                None => {
                    push_enter(table, row, id, shard, &mut shard_bytes, &mut delta);
                }
                Some((_, known)) => {
                    // Retained: diff changed columns only.
                    let mut cells: Vec<(u16, Value)> = Vec::new();
                    for (ci, kv) in known.iter().enumerate() {
                        let v = table.column(ci).get(row);
                        if !value_identical(kv, &v) {
                            cells.push((ci as u16, v));
                        }
                    }
                    push_update(id, cells, shard, &mut shard_bytes, &mut delta);
                }
            }
            shard_tags.push((class, id, shard));
        }

        // Pass 3: exits — mirrored entities whose source shard was
        // scanned but which no longer appear in the interest region.
        // (An entity migrating to a skipped shard is impossible:
        // insertion would have bumped that shard's generations.)
        let mut exits: Vec<(EntityId, usize)> = mirror
            .iter()
            .filter(|(id, (shard, _))| scanned.contains(shard) && !seen.contains_key(id))
            .map(|(&id, &(shard, _))| (id, shard))
            .collect();
        exits.sort_unstable_by_key(|(id, _)| *id);
        push_exits(
            src,
            shards,
            class,
            exits,
            &mut shard_bytes,
            &mut delta,
            stats,
        );

        stats.enters += delta.enters.len() as u64;
        stats.updated_cells += delta
            .updates
            .iter()
            .map(|(_, c)| c.len() as u64)
            .sum::<u64>();
        if !delta.is_empty() {
            classes.push((class, delta));
        }
    }

    let frame = Frame {
        baseline,
        tick: src.source_tick(),
        classes,
    };
    session.enc.clear();
    wire::encode_into(&frame, &mut session.enc);
    account_frame(stats, session.enc.len(), shards, &shard_bytes);
    if commit {
        commit_frame(session, frame.classes, shard_tags);
    }
}
