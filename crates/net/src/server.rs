//! The server side: sessions, interest evaluation, and per-tick delta
//! extraction driven by per-column generation counters.

use bytes::Bytes;
use sgl_dist::DistSim;
use sgl_engine::codec::value_wire_bytes;
use sgl_engine::{Engine, World};
use sgl_storage::{Catalog, ClassId, EntityId, FxHashMap, Value};

use crate::interest::{InterestSpec, ResolvedInterest};
use crate::stats::{NetStats, SessionStats};
use crate::wire::{self, ClassDelta, Frame};
use crate::NetError;

/// Handle of an attached session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u32);

/// Anything a [`ReplicationServer`] can replicate from: a single
/// [`World`] / [`Engine`], or a sharded [`DistSim`] whose stripes the
/// server fans subscriptions out across. The facade crate `sgl`
/// implements this for `Simulation` as well.
pub trait ReplicationSource {
    /// The shared catalog (must match the server's).
    fn catalog(&self) -> &Catalog;

    /// Number of shards (1 for single-node sources).
    fn shards(&self) -> usize {
        1
    }

    /// Shard `k`'s world. Rows marked as ghosts are replicas owned by
    /// another shard and are ignored by replication.
    fn shard_world(&self, k: usize) -> &World;

    /// Current tick of the source.
    fn source_tick(&self) -> u64;

    /// Could shard `k` own entities of `class` whose `attr` value lies
    /// within `[lo, hi]`? `false` prunes the shard from a session's
    /// fan-out. The default (`true`) is always sound.
    fn shard_may_own(&self, _k: usize, _class: ClassId, _attr: &str, _lo: f64, _hi: f64) -> bool {
        true
    }
}

impl ReplicationSource for World {
    fn catalog(&self) -> &Catalog {
        World::catalog(self)
    }

    fn shard_world(&self, _k: usize) -> &World {
        self
    }

    fn source_tick(&self) -> u64 {
        self.tick()
    }
}

impl ReplicationSource for Engine {
    fn catalog(&self) -> &Catalog {
        self.world().catalog()
    }

    fn shard_world(&self, _k: usize) -> &World {
        self.world()
    }

    fn source_tick(&self) -> u64 {
        self.world().tick()
    }
}

impl ReplicationSource for DistSim {
    fn catalog(&self) -> &Catalog {
        &self.game().catalog
    }

    fn shards(&self) -> usize {
        self.config().nodes
    }

    fn shard_world(&self, k: usize) -> &World {
        self.node_world(k)
    }

    fn source_tick(&self) -> u64 {
        self.node_world(0).tick()
    }

    fn shard_may_own(&self, k: usize, class: ClassId, attr: &str, lo: f64, hi: f64) -> bool {
        let part = &self.config().partition_attr;
        let partitioned = self
            .game()
            .catalog
            .class(class)
            .state
            .index_of(part)
            .is_some();
        if !partitioned {
            // Classes without the partition attribute live on node 0.
            return k == 0;
        }
        if attr != part {
            // Range over some other attribute: stripes say nothing.
            return true;
        }
        let (slo, shi) = self.stripe_range(k);
        // Owned rows sit inside their stripe between steps, so a shard
        // whose stripe misses the window cannot contribute.
        slo <= hi && lo < shi
    }
}

/// Replication configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Use per-column generation counters to skip unchanged extents
    /// without scanning (the default). `false` forces the full-scan
    /// baseline — only useful for benchmarking the difference.
    pub use_generations: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            use_generations: true,
        }
    }
}

/// Per-session server state: what the client is known to hold.
struct SessionState {
    interest: ResolvedInterest,
    /// Per class: id → (source shard, values in schema order). This is
    /// the server's model of the client mirror; deltas are diffs
    /// against it.
    mirror: Vec<FxHashMap<EntityId, (usize, Vec<Value>)>>,
    /// Per shard, per class: the generation counters at our last scan
    /// (empty = never scanned).
    last_gens: Vec<Vec<Vec<u64>>>,
    baseline_sent: bool,
    stats: SessionStats,
}

/// The replication server: attaches client sessions to a simulation (or
/// a cluster) and streams per-tick deltas of each session's declared
/// area of interest.
pub struct ReplicationServer {
    catalog: Catalog,
    cfg: NetConfig,
    sessions: Vec<Option<SessionState>>,
    last: NetStats,
}

impl ReplicationServer {
    /// A server for sources sharing `catalog`.
    pub fn new(catalog: Catalog) -> Self {
        Self::with_config(catalog, NetConfig::default())
    }

    /// A server with explicit [`NetConfig`].
    pub fn with_config(catalog: Catalog, cfg: NetConfig) -> Self {
        ReplicationServer {
            catalog,
            cfg,
            sessions: Vec::new(),
            last: NetStats::default(),
        }
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Attach a session with the given interest subscription. The first
    /// poll sends it a baseline snapshot of the subscribed region.
    pub fn attach(&mut self, spec: &InterestSpec) -> Result<SessionId, NetError> {
        let interest = spec.resolve(&self.catalog)?;
        let mirror = vec![FxHashMap::default(); self.catalog.len()];
        let id = SessionId(self.sessions.len() as u32);
        self.sessions.push(Some(SessionState {
            interest,
            mirror,
            last_gens: Vec::new(),
            baseline_sent: false,
            stats: SessionStats::default(),
        }));
        Ok(id)
    }

    /// Parse-and-attach convenience: see [`InterestSpec`] for the
    /// predicate syntax, e.g. `"Player where x in [120, 480]"`.
    pub fn attach_str(&mut self, spec: &str) -> Result<SessionId, NetError> {
        self.attach(&spec.parse::<InterestSpec>()?)
    }

    /// Detach a session; its id is never reused.
    pub fn detach(&mut self, sid: SessionId) -> bool {
        match self.sessions.get_mut(sid.0 as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                true
            }
            _ => false,
        }
    }

    /// Attached sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.iter().flatten().count()
    }

    /// Cumulative statistics of one session.
    pub fn session_stats(&self, sid: SessionId) -> Option<&SessionStats> {
        self.sessions
            .get(sid.0 as usize)
            .and_then(|s| s.as_ref())
            .map(|s| &s.stats)
    }

    /// Mutable statistics access for the transport layer (input and
    /// backpressure counters live next to the replication counters).
    pub(crate) fn session_stats_mut(&mut self, sid: SessionId) -> Option<&mut SessionStats> {
        self.sessions
            .get_mut(sid.0 as usize)
            .and_then(|s| s.as_mut())
            .map(|s| &mut s.stats)
    }

    /// The interest subscription of an attached session.
    pub fn session_interest(&self, sid: SessionId) -> Option<&InterestSpec> {
        self.sessions
            .get(sid.0 as usize)
            .and_then(|s| s.as_ref())
            .map(|s| &s.interest.spec)
    }

    /// Statistics of the last [`ReplicationServer::poll`].
    pub fn last_stats(&self) -> &NetStats {
        &self.last
    }

    /// Compute and commit this tick's frame for every session. Call
    /// once per simulation tick, after stepping the source. Each
    /// session's first frame is a baseline snapshot; subsequent frames
    /// are deltas (enter / changed-cells / exit+despawn).
    pub fn poll<S: ReplicationSource>(&mut self, src: &S) -> Vec<(SessionId, Bytes)> {
        self.poll_inner(src, true)
    }

    /// Compute this tick's frames *without* committing them (session
    /// mirrors, generation cursors, and statistics stay untouched), so
    /// repeated calls do identical work. For benchmarks and
    /// diagnostics; real streaming uses [`ReplicationServer::poll`].
    pub fn preview<S: ReplicationSource>(&mut self, src: &S) -> Vec<(SessionId, Bytes)> {
        self.poll_inner(src, false)
    }

    fn poll_inner<S: ReplicationSource>(
        &mut self,
        src: &S,
        commit: bool,
    ) -> Vec<(SessionId, Bytes)> {
        debug_assert_eq!(
            src.catalog().len(),
            self.catalog.len(),
            "source catalog mismatch"
        );
        let mut stats = NetStats {
            tick: src.source_tick(),
            sessions: self.session_count(),
            ..NetStats::default()
        };
        let mut out = Vec::with_capacity(stats.sessions);
        for (slot, session) in self.sessions.iter_mut().enumerate() {
            let Some(session) = session else { continue };
            let bytes = encode_session(
                &self.catalog,
                session,
                src,
                self.cfg.use_generations,
                commit,
                &mut stats,
            );
            out.push((SessionId(slot as u32), bytes));
        }
        if commit {
            self.last = stats;
        }
        out
    }
}

/// Cell-level change detection, bitwise for numbers: a NaN cell must
/// compare equal to its mirrored copy (IEEE `NaN != NaN` would re-ship
/// it on every scan forever).
fn value_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// Build (and optionally commit) one session's frame.
fn encode_session<S: ReplicationSource>(
    catalog: &Catalog,
    session: &mut SessionState,
    src: &S,
    use_generations: bool,
    commit: bool,
    stats: &mut NetStats,
) -> Bytes {
    let shards = src.shards();
    if session.last_gens.len() != shards {
        // First poll, or the source shape changed under the session
        // (e.g. re-pointed from a 4-node cluster to a single world).
        // Mirror entries are tagged with shard indexes of the old
        // shape, so a stale mirror could strand phantom entities whose
        // recorded shard no longer exists — resynchronize from scratch
        // with a fresh baseline instead.
        session.last_gens = vec![vec![Vec::new(); catalog.len()]; shards];
        for mirror in &mut session.mirror {
            mirror.clear();
        }
        session.baseline_sent = false;
    }
    let baseline = !session.baseline_sent;
    let spec = session.interest.spec.clone();
    let mut classes: Vec<(ClassId, ClassDelta)> = Vec::new();
    // Per-shard payload contribution, for fan-out traffic accounting.
    let mut shard_bytes: Vec<u64> = vec![0; shards];
    // Deferred mirror commits: (class, retained id, current shard).
    let mut relocations: Vec<(ClassId, EntityId, usize)> = Vec::new();
    let mut enter_shards: Vec<(ClassId, EntityId, usize)> = Vec::new();

    for cdef in catalog.classes() {
        let class = cdef.id;
        let Some(attr_col) = session.interest.attr_cols[class.0 as usize] else {
            continue;
        };
        // Which shards need a scan for this class?
        let mut scanned: Vec<usize> = Vec::new();
        for k in 0..shards {
            if !src.shard_may_own(k, class, &spec.attr, spec.lo, spec.hi) {
                continue;
            }
            let gens = src.shard_world(k).table(class).col_gens();
            if use_generations && session.last_gens[k][class.0 as usize].as_slice() == gens {
                stats.skipped_scans += 1;
                continue;
            }
            stats.scanned += 1;
            scanned.push(k);
        }
        if scanned.is_empty() {
            continue;
        }

        // Pass 1: current in-interest membership on the scanned shards.
        let mut seen: FxHashMap<EntityId, (usize, u32)> = FxHashMap::default();
        for &k in &scanned {
            let world = src.shard_world(k);
            let table = world.table(class);
            let xs = table.column(attr_col).f64();
            for (row, &id) in table.ids().iter().enumerate() {
                if !spec.contains(xs[row]) || world.is_ghost(class, id) {
                    continue;
                }
                seen.insert(id, (k, row as u32));
            }
        }

        // Pass 2: diff against the session mirror.
        let mut delta = ClassDelta::default();
        let mirror = &session.mirror[class.0 as usize];
        let mut ordered: Vec<(EntityId, (usize, u32))> =
            seen.iter().map(|(&id, &at)| (id, at)).collect();
        ordered.sort_unstable_by_key(|(id, _)| *id);
        for (id, (shard, row)) in ordered {
            let table = src.shard_world(shard).table(class);
            let row = row as usize;
            match mirror.get(&id) {
                None => {
                    // Entered the area of interest: ship the full row.
                    let values: Vec<Value> = (0..table.schema().len())
                        .map(|ci| table.column(ci).get(row))
                        .collect();
                    shard_bytes[shard] += 8 + values.iter().map(value_wire_bytes).sum::<u64>();
                    delta.enters.push((id, values));
                    enter_shards.push((class, id, shard));
                }
                Some((_, known)) => {
                    // Retained: diff changed columns only. When
                    // generation cursors are live, columns whose
                    // counter did not move on this shard are skipped
                    // without comparing a single cell.
                    let last = &session.last_gens[shard][class.0 as usize];
                    let gens = table.col_gens();
                    let mut cells: Vec<(u16, Value)> = Vec::new();
                    for ci in 0..table.schema().len() {
                        if use_generations && last.get(ci) == Some(&gens[ci]) {
                            continue;
                        }
                        let v = table.column(ci).get(row);
                        if !value_identical(&known[ci], &v) {
                            cells.push((ci as u16, v));
                        }
                    }
                    if !cells.is_empty() {
                        shard_bytes[shard] += 8
                            + 2
                            + cells
                                .iter()
                                .map(|(_, v)| 2 + value_wire_bytes(v))
                                .sum::<u64>();
                        delta.updates.push((id, cells));
                    }
                    relocations.push((class, id, shard));
                }
            }
        }

        // Pass 3: exits — mirrored entities whose source shard was
        // scanned but which no longer appear in the interest region.
        // (An entity migrating to a skipped shard is impossible:
        // insertion would have bumped that shard's generations.)
        let mut exits: Vec<(EntityId, usize)> = mirror
            .iter()
            .filter(|(id, (shard, _))| scanned.contains(shard) && !seen.contains_key(id))
            .map(|(&id, &(shard, _))| (id, shard))
            .collect();
        exits.sort_unstable_by_key(|(id, _)| *id);
        for (id, shard) in exits {
            let alive = (0..shards).any(|k| {
                let w = src.shard_world(k);
                w.table(class).row_of(id).is_some() && !w.is_ghost(class, id)
            });
            if alive {
                stats.exits += 1;
            } else {
                stats.despawns += 1;
            }
            shard_bytes[shard] += 8;
            delta.exits.push(id);
        }

        stats.enters += delta.enters.len() as u64;
        stats.updated_cells += delta
            .updates
            .iter()
            .map(|(_, c)| c.len() as u64)
            .sum::<u64>();
        if !delta.is_empty() {
            classes.push((class, delta));
        }

        if commit {
            for &k in &scanned {
                session.last_gens[k][class.0 as usize] =
                    src.shard_world(k).table(class).col_gens().to_vec();
            }
        }
    }

    let frame = Frame {
        baseline,
        tick: src.source_tick(),
        classes,
    };
    let bytes = wire::encode(&frame);

    stats.frames += 1;
    stats.client_traffic.msgs += 1;
    stats.client_traffic.bytes += bytes.len() as u64;
    if shards > 1 {
        for b in shard_bytes.iter().filter(|&&b| b > 0) {
            stats.fanout.msgs += 1;
            stats.fanout.bytes += b;
        }
    }

    if commit {
        session.baseline_sent = true;
        session.stats.frames += 1;
        session.stats.bytes += bytes.len() as u64;
        // Apply the delta to the session's model of the client.
        for (class, delta) in &frame.classes {
            let mirror = &mut session.mirror[class.0 as usize];
            for id in &delta.exits {
                mirror.remove(id);
                session.stats.exits += 1;
            }
            for (id, values) in &delta.enters {
                mirror.insert(*id, (0, values.clone()));
                session.stats.enters += 1;
            }
            for (id, cells) in &delta.updates {
                let entry = mirror.get_mut(id).expect("update targets mirrored id");
                for (col, v) in cells {
                    entry.1[*col as usize] = v.clone();
                    session.stats.updated_cells += 1;
                }
            }
        }
        for (class, id, shard) in enter_shards.into_iter().chain(relocations) {
            if let Some(entry) = session.mirror[class.0 as usize].get_mut(&id) {
                entry.0 = shard;
            }
        }
    }
    bytes
}
