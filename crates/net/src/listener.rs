//! The server end of the wire: a [`NetListener`] accepts TCP
//! connections, handshakes them into replication sessions, drains and
//! validates their input frames each tick, and pumps one delta frame
//! per session per tick with per-session backpressure accounting.
//!
//! ## Tick loop
//!
//! ```text
//! listener.accept_pending();        // new connections + handshakes
//! listener.drain_inputs(&mut sim);  // validate + apply client intents
//! sim.step();                       // the game tick
//! listener.pump_frames(&sim);       // one SGN1 delta per session
//! ```
//!
//! ## Transport modes
//!
//! The listener runs in one of two [`IoMode`]s (see
//! [`IoConfig::from_env`] / `SGL_IO_THREADS`):
//!
//! - **Sweep** (legacy, the oracle): every socket gets one nonblocking
//!   read + write per tick on the calling thread — linear in connected
//!   sessions, even idle ones.
//! - **Readiness** (default): an accept thread plus N I/O shard threads
//!   block on kernel readiness (`epoll`, or the `poll(2)` fallback) and
//!   move bytes; the main thread absorbs per-session inboxes, decodes
//!   and validates in **ascending session-id order**, and hands framed
//!   bytes back to the owning shard. Shard assignment is a pure
//!   function of the session id ([`readiness`] module docs) so frames
//!   are bit-identical to the sweep at any thread count.
//!
//! ## Handshake
//!
//! The client opens with `HELLO { version, interest spec }`. A version
//! mismatch or an unparseable/unresolvable subscription is answered
//! with `ERROR { reason }` and the connection closes; otherwise the
//! server attaches a [`ReplicationServer`] session and answers
//! `WELCOME { version, session id }`. The session's first `FRAME` is a
//! baseline snapshot of the subscribed region. Handshakes always run on
//! the main thread — the accept thread only queues raw sockets.
//!
//! ## Disconnection policy
//!
//! Structural protocol violations — a hostile length prefix, a corrupt
//! `SGI1` payload, an input frame carrying someone else's session id,
//! an unexpected message kind — disconnect the offending session (with
//! a best-effort `ERROR` notice). *Semantically* invalid intents inside
//! a well-formed frame are rejected and counted, but the session lives
//! on; see [`apply_batch`](crate::input::apply_batch). Either way other
//! sessions are never affected.
//!
//! ## Backpressure
//!
//! Frames are written with non-blocking sockets; bytes the kernel will
//! not take are queued per session and retried on readiness (or the
//! next pump / an explicit [`NetListener::flush`] in sweep mode).
//! [`NetStats::backlog_bytes`] reports the queue depth; a session whose
//! queue exceeds [`ListenerConfig::max_queued`] is disconnected — a
//! client that stops reading cannot pin server memory. Pre-handshake
//! peers cannot either: the pending queue is capped
//! ([`ListenerConfig::max_pending`]), the `HELLO` has its own tight
//! length limit ([`ListenerConfig::max_hello`]), and a connection that
//! has not completed its handshake within
//! [`ListenerConfig::handshake_timeout`] is dropped. In readiness mode
//! a flooding *sender* is bounded too: a shard pauses a session's reads
//! once its un-absorbed inbox passes a soft cap, extending TCP
//! backpressure through the shard.

use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use sgl_obs::Registry;
use sgl_storage::{Catalog, EntityId, FxHashMap, FxHashSet};

use crate::input::{self, apply_batch, BatchReport, InputSink};
use crate::readiness::{IoConfig, IoMode, IoShardStats};
use crate::server::{NetConfig, ReplicationServer, ReplicationSource, SessionId};
use crate::stats::NetStats;
use crate::transport::{
    decode_hello, decode_resub, frame_msg, spawned_payload, welcome_payload, MsgReader,
    DEFAULT_MAX_MSG, MSG_ERROR, MSG_FRAME, MSG_HELLO, MSG_INPUT, MSG_RESUB, MSG_SPAWNED, MSG_STATS,
    MSG_WELCOME, PROTOCOL_VERSION,
};
use crate::{wire, InterestSpec, NetError};

#[cfg(unix)]
use crate::readiness::{owner_of, AcceptThread, Cmd, ShardHandle};

/// Transport configuration of a [`NetListener`].
#[derive(Debug, Clone)]
pub struct ListenerConfig {
    /// Replication configuration handed to the inner
    /// [`ReplicationServer`].
    pub net: NetConfig,
    /// Transport I/O mode: readiness shards (default) or the legacy
    /// single-thread sweep (the bit-exactness oracle). The default
    /// reads `SGL_IO_THREADS` / `SGL_IO_BACKEND`
    /// ([`IoConfig::from_env`]).
    pub io: IoConfig,
    /// Skip writing empty (non-baseline) delta frames. The protocol
    /// default ships one frame per session per tick so lockstep clients
    /// can count ticks; flipping this makes *idle* sessions cost zero
    /// socket traffic — a mostly-idle node serves 10k sessions for the
    /// price of its active ones. Clients must then treat frame ticks as
    /// monotonic rather than contiguous ([`NetStats::frames_elided`]).
    pub elide_empty_frames: bool,
    /// Upper bound on one inbound message's length.
    pub max_msg: usize,
    /// Upper bound on a session's outbound send queue; beyond it the
    /// session is disconnected (backpressure overflow).
    pub max_queued: usize,
    /// Upper bound on simultaneously accepted connections that have not
    /// completed their handshake; excess connections are closed on
    /// accept (pre-handshake peers must not pin server memory either).
    pub max_pending: usize,
    /// Upper bound on the `HELLO` message length (a handshake needs a
    /// version and a subscription string — far below `max_msg`).
    pub max_hello: usize,
    /// How long an accepted connection may dawdle before sending its
    /// complete `HELLO`; beyond it the connection is dropped.
    pub handshake_timeout: Duration,
    /// Per-session input budget: at most this many intents (plus
    /// re-subscriptions, at one unit each) are processed per session
    /// per [`NetListener::drain_inputs`] call (one tick, in the
    /// canonical loop). Excess intents in the batch that crosses the
    /// budget are dropped and counted ([`NetStats::inputs_throttled`])
    /// — the session is *not* disconnected; once the budget is spent
    /// the session's remaining traffic waits for the next tick (TCP
    /// backpressure). `0` mutes a session's input socket entirely.
    /// Default: unlimited.
    pub max_intents_per_tick: usize,
}

impl Default for ListenerConfig {
    fn default() -> Self {
        ListenerConfig {
            net: NetConfig::default(),
            io: IoConfig::from_env(),
            elide_empty_frames: false,
            max_msg: DEFAULT_MAX_MSG,
            max_queued: 8 * 1024 * 1024,
            max_pending: 256,
            max_hello: 64 * 1024,
            handshake_timeout: Duration::from_secs(10),
            max_intents_per_tick: usize::MAX,
        }
    }
}

/// An accepted connection still waiting for its `HELLO`.
struct Pending {
    stream: TcpStream,
    reader: MsgReader,
    accepted_at: Instant,
}

/// Where a session's socket lives.
enum Transport {
    /// Sweep mode: the socket and its send queue are owned here.
    Local { stream: TcpStream, wr: Vec<u8> },
    /// Readiness mode: the socket lives on I/O shard thread `t`
    /// (`owner_of(sid, threads)`); only bytes cross the boundary.
    #[cfg(unix)]
    Shard(usize),
}

/// One handshaken session's transport state. Protocol state (the
/// incremental reader, ownership, input stamps) always lives here on
/// the main thread — shards never interpret bytes.
struct Conn {
    transport: Transport,
    reader: MsgReader,
    /// Entities this session may write (spawned via its intents or
    /// granted by the host).
    owned: FxHashSet<EntityId>,
    /// The client's last reported applied tick (from input stamps).
    last_input_tick: u64,
    /// Readiness mode: the shard reported EOF (peer closed).
    eof: bool,
    /// Readiness mode: the shard reported a socket error.
    io_err: bool,
}

/// Counters accumulated between pumps (drain runs before the tick,
/// the pump after; both fold into the same [`NetStats`]).
#[derive(Default)]
struct TickCounters {
    input_msgs: u64,
    input_bytes: u64,
    applied: u64,
    rejected: u64,
    throttled: u64,
    disconnects: u64,
}

/// What one [`NetListener::drain_inputs`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Input messages drained across all sessions.
    pub msgs: u64,
    /// Intents applied to the sink.
    pub applied: u64,
    /// Intents rejected by validation.
    pub rejected: u64,
    /// Intents dropped by the per-session input budget
    /// ([`ListenerConfig::max_intents_per_tick`]).
    pub throttled: u64,
    /// Sessions disconnected (corrupt frames, protocol violations,
    /// hangups).
    pub disconnects: u64,
}

/// The running I/O engine.
enum IoState {
    Sweep,
    #[cfg(unix)]
    Sharded(Sharded),
}

#[cfg(unix)]
struct Sharded {
    accept: AcceptThread,
    shards: Vec<ShardHandle>,
    /// Shard counter totals at the previous pump (cumulative), so each
    /// pump can report per-poll deltas in [`NetStats`].
    prev_waits: u64,
    prev_spurious: u64,
}

#[cfg(unix)]
impl Sharded {
    fn totals(&self) -> IoShardStats {
        let mut t = IoShardStats::default();
        for s in &self.shards {
            let snap = s.counters.snapshot();
            t.waits += snap.waits;
            t.wakeups += snap.wakeups;
            t.wakeups_spurious += snap.wakeups_spurious;
            t.reads += snap.reads;
            t.writes += snap.writes;
            t.backlog_bytes += snap.backlog_bytes;
            t.sessions += snap.sessions;
        }
        t
    }
}

/// Per-shard command batches built during a drain or pump and
/// dispatched with one lock + one wake per touched shard.
struct OutBatches {
    per_shard: Vec<Vec<Cmd2>>,
}

// In sweep mode (and on non-Unix) there are no shards and no commands;
// alias to keep `OutBatches` compiling everywhere.
#[cfg(unix)]
type Cmd2 = Cmd;
#[cfg(not(unix))]
type Cmd2 = std::convert::Infallible;

impl OutBatches {
    fn new(shards: usize) -> OutBatches {
        OutBatches {
            per_shard: (0..shards).map(|_| Vec::new()).collect(),
        }
    }
}

/// A TCP replication server: the in-process [`ReplicationServer`]
/// behind a real wire. See the [module docs](self) for the protocol.
pub struct NetListener {
    listener: TcpListener,
    cfg: ListenerConfig,
    repl: ReplicationServer,
    pending: Vec<Pending>,
    conns: FxHashMap<u32, Conn>,
    counters: TickCounters,
    io: IoState,
    /// Empty delta frames skipped this tick (elision enabled only).
    elided: u64,
    last: NetStats,
    /// Cross-poll metrics: every pump folds [`NetStats`] in
    /// (`net.*` names) and observes the transport phase wall times
    /// (`net.drain_nanos`, `net.pump_nanos`, `net.socket_write_nanos`,
    /// plus `net.io_shard.dispatch_nanos` in readiness mode).
    /// Served to clients over the wire as [`MSG_STATS`].
    registry: Registry,
}

impl NetListener {
    /// Bind on `addr` (use port 0 for an OS-assigned port) for sources
    /// sharing `catalog`.
    pub fn bind(addr: impl ToSocketAddrs, catalog: Catalog) -> std::io::Result<NetListener> {
        Self::bind_with_config(addr, catalog, ListenerConfig::default())
    }

    /// Bind with an explicit [`ListenerConfig`]. In readiness mode this
    /// spawns the accept thread and the I/O shard threads; they are
    /// joined when the listener drops.
    pub fn bind_with_config(
        addr: impl ToSocketAddrs,
        catalog: Catalog,
        cfg: ListenerConfig,
    ) -> std::io::Result<NetListener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let io = match cfg.io.mode {
            IoMode::Sweep => IoState::Sweep,
            #[cfg(unix)]
            IoMode::Readiness => {
                let accept =
                    AcceptThread::spawn(listener.try_clone()?, cfg.io.backend, cfg.max_pending)?;
                let notice = frame_msg(MSG_ERROR, b"send queue overflow");
                let shards = (0..cfg.io.threads.max(1))
                    .map(|i| ShardHandle::spawn(i, cfg.io.backend, cfg.max_queued, notice.clone()))
                    .collect::<std::io::Result<Vec<_>>>()?;
                IoState::Sharded(Sharded {
                    accept,
                    shards,
                    prev_waits: 0,
                    prev_spurious: 0,
                })
            }
            #[cfg(not(unix))]
            IoMode::Readiness => IoState::Sweep,
        };
        let repl = ReplicationServer::with_config(catalog, cfg.net.clone());
        Ok(NetListener {
            listener,
            cfg,
            repl,
            pending: Vec::new(),
            conns: FxHashMap::default(),
            counters: TickCounters::default(),
            io,
            elided: 0,
            last: NetStats::default(),
            registry: Registry::new(),
        })
    }

    /// The bound address (where clients connect).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared catalog sessions are validated against.
    pub fn catalog(&self) -> &Catalog {
        self.repl.catalog()
    }

    /// The I/O configuration the listener is actually running (on
    /// non-Unix platforms a readiness request falls back to sweep).
    pub fn io_config(&self) -> IoConfig {
        match &self.io {
            IoState::Sweep => IoConfig {
                mode: IoMode::Sweep,
                ..self.cfg.io
            },
            #[cfg(unix)]
            IoState::Sharded(_) => self.cfg.io,
        }
    }

    /// Per-shard I/O counters (cumulative since bind; empty in sweep
    /// mode). Syscall counts come from the shim's instrumented hook —
    /// regression tests use this to assert an untouched shard did zero
    /// syscalls.
    pub fn io_shard_stats(&self) -> Vec<IoShardStats> {
        match &self.io {
            IoState::Sweep => Vec::new(),
            #[cfg(unix)]
            IoState::Sharded(sh) => sh.shards.iter().map(|s| s.counters.snapshot()).collect(),
        }
    }

    /// Accepted connections still waiting for their `HELLO`.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Handshaken sessions currently connected.
    pub fn session_count(&self) -> usize {
        self.conns.len()
    }

    /// Session ids of the connected sessions (ascending).
    pub fn sessions(&self) -> Vec<SessionId> {
        let mut ids: Vec<u32> = self.conns.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(SessionId).collect()
    }

    /// The interest subscription a session handshook with.
    pub fn session_interest(&self, sid: SessionId) -> Option<&InterestSpec> {
        self.repl.session_interest(sid)
    }

    /// Cumulative replication/input statistics of one session.
    pub fn session_stats(&self, sid: SessionId) -> Option<&crate::SessionStats> {
        self.repl.session_stats(sid)
    }

    /// Statistics of the last [`NetListener::pump_frames`] (replication
    /// counters plus the transport counters accumulated since the
    /// previous pump).
    pub fn last_stats(&self) -> &NetStats {
        &self.last
    }

    /// The cross-poll metrics registry (`net.*` counters, gauges and
    /// histograms; populated by [`NetListener::pump_frames`]).
    pub fn metrics(&self) -> &Registry {
        &self.registry
    }

    /// The registry rendered in the stable `counter/gauge/hist` text
    /// format — the payload a [`MSG_STATS`] request is answered with.
    pub fn dump_metrics(&self) -> String {
        self.registry.dump()
    }

    /// Entities a session owns (may write via intents).
    pub fn owned(&self, sid: SessionId) -> Option<&FxHashSet<EntityId>> {
        self.conns.get(&sid.0).map(|c| &c.owned)
    }

    /// Host-side ownership grant: allow `sid` to write `id` (e.g. the
    /// avatar the game assigned to this player). Returns `false` for
    /// unknown sessions.
    pub fn grant(&mut self, sid: SessionId, id: EntityId) -> bool {
        match self.conns.get_mut(&sid.0) {
            Some(conn) => {
                conn.owned.insert(id);
                true
            }
            None => false,
        }
    }

    /// Accept queued TCP connections and progress handshakes. Returns
    /// the number of sessions that completed their handshake.
    ///
    /// Handshakes always run here, on the caller's thread — in
    /// readiness mode the accept thread only queues raw sockets.
    pub fn accept_pending(&mut self) -> std::io::Result<usize> {
        // Readiness mode: connections the accept thread pulled since the
        // last tick. Nonblocking + nodelay were set over there.
        #[cfg(unix)]
        if let IoState::Sharded(sh) = &mut self.io {
            let queue = std::mem::take(&mut *sh.accept.queue.lock().unwrap());
            for stream in queue {
                if self.pending.len() >= self.cfg.max_pending {
                    drop(stream);
                    continue;
                }
                self.pending.push(Pending {
                    stream,
                    reader: MsgReader::new(self.cfg.max_hello.min(self.cfg.max_msg)),
                    accepted_at: Instant::now(),
                });
            }
        }
        // Both modes: drain the kernel backlog directly (the listening
        // socket is shared with the accept thread and stays nonblocking
        // on both handles). This keeps the sweep-mode contract that a
        // completed `connect` is visible to the *next* `accept_pending`
        // — callers never race the accept thread's scheduling.
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.pending.len() >= self.cfg.max_pending {
                        // Pre-handshake flood: close instead of queueing.
                        drop(stream);
                        continue;
                    }
                    stream.set_nonblocking(true)?;
                    let _ = stream.set_nodelay(true);
                    self.pending.push(Pending {
                        stream,
                        reader: MsgReader::new(self.cfg.max_hello.min(self.cfg.max_msg)),
                        accepted_at: Instant::now(),
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        let mut attached = 0;
        let timeout = self.cfg.handshake_timeout;
        let pending = std::mem::take(&mut self.pending);
        for p in pending {
            if p.accepted_at.elapsed() > timeout {
                continue; // dawdling handshake: drop the connection
            }
            match self.try_handshake(p) {
                Handshake::Waiting(p) => self.pending.push(p),
                Handshake::Attached => attached += 1,
                Handshake::Dropped => {}
            }
        }
        Ok(attached)
    }

    /// Drain every session's socket, decode complete input frames,
    /// validate them, and apply the surviving intents to `sink`. Call
    /// once per tick, before stepping the simulation.
    ///
    /// Sessions are processed in **ascending session-id order** in both
    /// modes — with sharded I/O, readiness order must not leak into
    /// apply order (the `pool.rs` fixed-fold-order convention).
    pub fn drain_inputs<S: InputSink>(&mut self, sink: &mut S) -> DrainReport {
        let t_drain = Instant::now();
        let before = DrainReport {
            msgs: self.counters.input_msgs,
            applied: self.counters.applied,
            rejected: self.counters.rejected,
            throttled: self.counters.throttled,
            disconnects: self.counters.disconnects,
        };
        #[cfg(unix)]
        self.absorb_shard_reports();
        let mut sids: Vec<u32> = self.conns.keys().copied().collect();
        sids.sort_unstable();
        let mut out = OutBatches::new(self.shard_count());
        for sid in sids {
            if let Err(reason) = self.drain_one(sid, sink, &mut out) {
                self.disconnect(SessionId(sid), reason);
            }
        }
        self.dispatch(out);
        self.registry
            .observe("net.drain_nanos", t_drain.elapsed().as_nanos() as u64);
        DrainReport {
            msgs: self.counters.input_msgs - before.msgs,
            applied: self.counters.applied - before.applied,
            rejected: self.counters.rejected - before.rejected,
            throttled: self.counters.throttled - before.throttled,
            disconnects: self.counters.disconnects - before.disconnects,
        }
    }

    /// Compute this tick's replication frames and hand one to every
    /// session (sweep: write + queue locally; readiness: batch to the
    /// owning shards, one lock + one wake per shard). Call once per
    /// tick, after stepping the source. Also folds the tick's transport
    /// counters into [`NetListener::last_stats`].
    pub fn pump_frames<S: ReplicationSource>(&mut self, src: &S) {
        let t_pump = Instant::now();
        let max_queued = self.cfg.max_queued;
        let elide = self.cfg.elide_empty_frames;
        let mut socket_nanos = 0u64;
        self.elided = 0;
        // Hosts that pump without draining (broadcast-only loops) must
        // still see shard-reported overflow disconnects.
        #[cfg(unix)]
        self.absorb_shard_reports();
        match &mut self.io {
            IoState::Sweep => {
                // Frames are encoded straight into each session's
                // reused send queue (`poll_with` lends the server's
                // per-session buffer) — no intermediate `Bytes`/`Vec`
                // per session per tick.
                let conns = &mut self.conns;
                let mut overflowed: Vec<u32> = Vec::new();
                let mut elided = 0u64;
                self.repl.poll_with(src, |sid, frame| {
                    let Some(conn) = conns.get_mut(&sid.0) else {
                        return;
                    };
                    if elide && is_empty_delta(frame) {
                        elided += 1;
                        return;
                    }
                    let Transport::Local { stream, wr } = &mut conn.transport else {
                        return;
                    };
                    let len = (frame.len() + 1) as u32;
                    wr.reserve(4 + len as usize);
                    wr.extend_from_slice(&len.to_le_bytes());
                    wr.push(MSG_FRAME);
                    wr.extend_from_slice(frame);
                    let t_write = Instant::now();
                    flush_backlog(stream, wr);
                    socket_nanos += t_write.elapsed().as_nanos() as u64;
                    if wr.len() > max_queued {
                        overflowed.push(sid.0);
                    }
                });
                self.elided = elided;
                for sid in overflowed {
                    self.disconnect(SessionId(sid), "send queue overflow");
                }
            }
            #[cfg(unix)]
            IoState::Sharded(sh) => {
                let conns = &self.conns;
                let threads = sh.shards.len();
                let mut out = OutBatches::new(threads);
                let mut elided = 0u64;
                self.repl.poll_with(src, |sid, frame| {
                    let Some(conn) = conns.get(&sid.0) else {
                        return;
                    };
                    if elide && is_empty_delta(frame) {
                        elided += 1;
                        return;
                    }
                    let Transport::Shard(t) = conn.transport else {
                        return;
                    };
                    let len = (frame.len() + 1) as u32;
                    let mut bytes = Vec::with_capacity(4 + len as usize);
                    bytes.extend_from_slice(&len.to_le_bytes());
                    bytes.push(MSG_FRAME);
                    bytes.extend_from_slice(frame);
                    out.per_shard[t].push(Cmd::Send { sid: sid.0, bytes });
                });
                self.elided = elided;
                let t_dispatch = Instant::now();
                for (t, batch) in out.per_shard.into_iter().enumerate() {
                    if !batch.is_empty() {
                        sh.shards[t].send(batch);
                    }
                }
                socket_nanos = t_dispatch.elapsed().as_nanos() as u64;
                self.registry
                    .observe("net.io_shard.dispatch_nanos", socket_nanos);
            }
        }
        let mut stats = self.repl.last_stats().clone();
        let counters = std::mem::take(&mut self.counters);
        stats.inputs.msgs = counters.input_msgs;
        stats.inputs.bytes = counters.input_bytes;
        stats.inputs_applied = counters.applied;
        stats.inputs_rejected = counters.rejected;
        stats.inputs_throttled = counters.throttled;
        stats.disconnects = counters.disconnects;
        stats.frames_elided = self.elided;
        match &mut self.io {
            IoState::Sweep => {
                stats.backlog_bytes = self
                    .conns
                    .values()
                    .map(|c| match &c.transport {
                        Transport::Local { wr, .. } => wr.len() as u64,
                        #[cfg(unix)]
                        Transport::Shard(_) => 0,
                    })
                    .sum();
            }
            #[cfg(unix)]
            IoState::Sharded(sh) => {
                let totals = sh.totals();
                stats.backlog_bytes = totals.backlog_bytes;
                stats.io_shards = sh.shards.len();
                stats.epoll_waits = totals.waits.saturating_sub(sh.prev_waits);
                stats.wakeups_spurious = totals.wakeups_spurious.saturating_sub(sh.prev_spurious);
                sh.prev_waits = totals.waits;
                sh.prev_spurious = totals.wakeups_spurious;
            }
        }
        stats.sessions = self.conns.len();
        self.last = stats;
        self.last.fold_into(&mut self.registry);
        self.registry
            .observe("net.pump_nanos", t_pump.elapsed().as_nanos() as u64);
        self.registry
            .observe("net.socket_write_nanos", socket_nanos);
    }

    /// Retry queued writes (the pump does this implicitly; hosts may
    /// call it between ticks to bleed backlog). The backlog set is
    /// per-shard: only shards whose backlog gauge is non-zero are even
    /// woken — untouched shards stay blocked in their wait and issue
    /// **zero** syscalls (asserted by a regression test against the
    /// shim's instrumented counters). In sweep mode only sockets with
    /// queued bytes are swept.
    pub fn flush(&mut self) {
        match &mut self.io {
            IoState::Sweep => {
                let backlogged: Vec<u32> = self
                    .conns
                    .iter()
                    .filter(|(_, c)| match &c.transport {
                        Transport::Local { wr, .. } => !wr.is_empty(),
                        #[cfg(unix)]
                        Transport::Shard(_) => false,
                    })
                    .map(|(&sid, _)| sid)
                    .collect();
                for sid in backlogged {
                    self.flush_session(SessionId(sid));
                }
                self.last.backlog_bytes = self
                    .conns
                    .values()
                    .map(|c| match &c.transport {
                        Transport::Local { wr, .. } => wr.len() as u64,
                        #[cfg(unix)]
                        Transport::Shard(_) => 0,
                    })
                    .sum();
            }
            #[cfg(unix)]
            IoState::Sharded(sh) => {
                let mut backlog = 0;
                for shard in &sh.shards {
                    let queued = shard.counters.snapshot().backlog_bytes;
                    backlog += queued;
                    if queued > 0 {
                        shard.send([Cmd::Flush]);
                    }
                }
                self.last.backlog_bytes = backlog;
            }
        }
    }

    /// The client's last reported applied tick (input frame stamps).
    pub fn session_input_tick(&self, sid: SessionId) -> Option<u64> {
        self.conns.get(&sid.0).map(|c| c.last_input_tick)
    }

    fn shard_count(&self) -> usize {
        match &self.io {
            IoState::Sweep => 0,
            #[cfg(unix)]
            IoState::Sharded(sh) => sh.shards.len(),
        }
    }

    /// Move shard-reported bytes and flags into main-thread session
    /// state (readiness mode; called at the top of every drain).
    /// Sessions the shards disconnected for overflow are detached here.
    #[cfg(unix)]
    fn absorb_shard_reports(&mut self) {
        let IoState::Sharded(sh) = &mut self.io else {
            return;
        };
        // A session's reader may hold at most one max-length message
        // plus change; beyond that the bytes stay in the shard inbox
        // (which pauses its reads) until the decoder catches up.
        let reader_cap = self.cfg.max_msg.saturating_add(5);
        let conns = &mut self.conns;
        let mut overflowed: Vec<u32> = Vec::new();
        for shard in &sh.shards {
            let mut inbox = shard.inbox.lock().unwrap();
            inbox.retain(|&sid, sin| {
                let Some(conn) = conns.get_mut(&sid) else {
                    return false; // already disconnected: drop the report
                };
                if !sin.bytes.is_empty() && conn.reader.buffered() >= reader_cap {
                    return true; // decoder saturated: keep for later
                }
                conn.reader.push_bytes(&sin.bytes);
                conn.eof |= sin.eof;
                conn.io_err |= sin.err;
                if sin.overflow {
                    overflowed.push(sid);
                }
                false
            });
        }
        for sid in overflowed {
            // The shard already closed the socket and wrote the notice.
            if self.conns.remove(&sid).is_some() {
                self.repl.detach(SessionId(sid));
                self.counters.disconnects += 1;
            }
        }
    }

    /// Push batched commands to their shards: one lock + one wake per
    /// touched shard. No-op for sweep mode / empty batches.
    fn dispatch(&mut self, out: OutBatches) {
        #[cfg(unix)]
        if let IoState::Sharded(sh) = &self.io {
            for (t, batch) in out.per_shard.into_iter().enumerate() {
                if !batch.is_empty() {
                    sh.shards[t].send(batch);
                }
            }
            return;
        }
        let _ = out;
    }

    /// Queue a server→client message on a live session (stats replies,
    /// spawn acks): sweep writes through immediately, readiness batches
    /// for the owning shard.
    fn queue_msg(&mut self, sid: u32, msg: Vec<u8>, out: &mut OutBatches) {
        let Some(conn) = self.conns.get_mut(&sid) else {
            return;
        };
        match &mut conn.transport {
            Transport::Local { stream, wr } => write_some(stream, wr, &msg),
            #[cfg(unix)]
            Transport::Shard(t) => out.per_shard[*t].push(Cmd::Send { sid, bytes: msg }),
        }
    }

    fn try_handshake(&mut self, mut p: Pending) -> Handshake {
        let eof = match p.reader.fill(&mut p.stream) {
            Ok(eof) => eof,
            Err(_) => return Handshake::Dropped,
        };
        match p.reader.next_msg() {
            Ok(None) => {
                if eof {
                    Handshake::Dropped
                } else {
                    Handshake::Waiting(p)
                }
            }
            Err(_) => Handshake::Dropped,
            Ok(Some((MSG_HELLO, payload))) => match self.admit(&payload) {
                Ok(sid) => {
                    let welcome = frame_msg(MSG_WELCOME, &welcome_payload(PROTOCOL_VERSION, sid.0));
                    let mut reader = p.reader;
                    reader.set_max_msg(self.cfg.max_msg);
                    match &mut self.io {
                        IoState::Sweep => {
                            let mut stream = p.stream;
                            let mut wr = Vec::new();
                            write_some(&mut stream, &mut wr, &welcome);
                            self.conns.insert(
                                sid.0,
                                Conn {
                                    transport: Transport::Local { stream, wr },
                                    reader,
                                    owned: FxHashSet::default(),
                                    last_input_tick: 0,
                                    eof: false,
                                    io_err: false,
                                },
                            );
                        }
                        #[cfg(unix)]
                        IoState::Sharded(sh) => {
                            let t = owner_of(sid.0, sh.shards.len());
                            sh.shards[t].send([Cmd::Register {
                                sid: sid.0,
                                stream: p.stream,
                                greeting: welcome,
                            }]);
                            self.conns.insert(
                                sid.0,
                                Conn {
                                    transport: Transport::Shard(t),
                                    reader,
                                    owned: FxHashSet::default(),
                                    last_input_tick: 0,
                                    eof: false,
                                    io_err: false,
                                },
                            );
                        }
                    }
                    Handshake::Attached
                }
                Err(e) => {
                    let msg = frame_msg(MSG_ERROR, e.to_string().as_bytes());
                    let _ = p.stream.write_all(&msg);
                    Handshake::Dropped
                }
            },
            Ok(Some(_)) => Handshake::Dropped,
        }
    }

    fn admit(&mut self, hello: &[u8]) -> Result<SessionId, NetError> {
        let (version, spec) = decode_hello(hello)?;
        if version != PROTOCOL_VERSION {
            return Err(NetError::Refused(format!(
                "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"
            )));
        }
        let spec: InterestSpec = spec.parse()?;
        self.repl.attach(&spec)
    }

    fn drain_one<S: InputSink>(
        &mut self,
        sid: u32,
        sink: &mut S,
        out: &mut OutBatches,
    ) -> Result<(), &'static str> {
        // The per-tick input budget. An empty budget skips the socket
        // outright — unread bytes stay in the kernel (sweep) or pile up
        // to the shard's soft cap (readiness) and TCP backpressure does
        // the throttling (the amortized sweep).
        let mut remaining = self.cfg.max_intents_per_tick;
        if remaining == 0 {
            return Ok(());
        }
        let eof = {
            let conn = self.conns.get_mut(&sid).expect("draining a live session");
            if conn.io_err {
                return Err("read error");
            }
            match &mut conn.transport {
                Transport::Local { stream, .. } => {
                    conn.reader.fill(stream).map_err(|_| "read error")?
                }
                // Readiness mode: bytes were absorbed before this call;
                // the EOF latch plays the role of fill's return.
                #[cfg(unix)]
                Transport::Shard(_) => conn.eof,
            }
        };
        let mut deferred = false;
        loop {
            if remaining == 0 {
                // Budget spent: stop decoding. Unprocessed messages
                // stay buffered (and unread bytes stay in the kernel)
                // until the next tick's drain — TCP backpressure, not
                // a disconnect.
                deferred = true;
                break;
            }
            let conn = self.conns.get_mut(&sid).expect("draining a live session");
            let msg = conn.reader.next_msg().map_err(|_| "bad message length")?;
            let Some((kind, payload)) = msg else { break };
            match kind {
                MSG_INPUT => {
                    self.counters.input_msgs += 1;
                    self.counters.input_bytes += 5 + payload.len() as u64;
                    let mut batch = input::decode(&payload).map_err(|_| "corrupt input frame")?;
                    if batch.session != sid {
                        return Err("input frame for another session");
                    }
                    let over = batch.intents.len().saturating_sub(remaining);
                    if over > 0 {
                        // Over budget: drop the excess, keep the session.
                        batch.intents.truncate(remaining);
                        self.counters.throttled += over as u64;
                    }
                    remaining -= batch.intents.len();
                    let report = {
                        let conn = self.conns.get_mut(&sid).expect("draining a live session");
                        conn.last_input_tick = conn.last_input_tick.max(batch.tick);
                        apply_batch(&batch, &mut conn.owned, sink)
                    };
                    self.counters.applied += report.applied;
                    self.counters.rejected += report.rejected;
                    if let Some(stats) = self.repl.session_stats_mut(SessionId(sid)) {
                        stats.inputs_applied += report.applied;
                        stats.inputs_rejected += report.rejected;
                        stats.inputs_throttled += over as u64;
                    }
                    self.ack_spawns(sid, &report, out);
                }
                MSG_RESUB => {
                    // A live interest re-subscription: swap the spec;
                    // the next frame carries the symmetric difference.
                    // Costs one budget unit — a resub flood cannot buy
                    // unbounded parse/resolve/index work either.
                    remaining -= 1;
                    let spec = decode_resub(&payload).map_err(|_| "corrupt resubscription")?;
                    let spec: InterestSpec =
                        spec.parse().map_err(|_| "unparseable resubscription")?;
                    self.repl
                        .resubscribe(SessionId(sid), &spec)
                        .map_err(|_| "unresolvable resubscription")?;
                }
                MSG_STATS => {
                    // Metrics interrogation: reply with the registry
                    // dump as of the last pump. Costs one budget unit —
                    // a stats flood cannot amplify beyond the session's
                    // per-tick message allowance.
                    remaining -= 1;
                    if !payload.is_empty() {
                        return Err("corrupt stats request");
                    }
                    self.registry.counter_add("net.stats_requests", 1);
                    let text = self.registry.dump();
                    let msg = frame_msg(MSG_STATS, text.as_bytes());
                    self.queue_msg(sid, msg, out);
                }
                _ => return Err("unexpected message kind"),
            }
        }
        if eof && !deferred {
            // A half-closed peer with messages deferred by the budget
            // keeps its session until later drains have processed them
            // (the next fill / absorbed report re-reports the EOF).
            return Err("peer closed");
        }
        Ok(())
    }

    fn ack_spawns(&mut self, sid: u32, report: &BatchReport, out: &mut OutBatches) {
        for &(req, id) in &report.spawned {
            let msg = frame_msg(MSG_SPAWNED, &spawned_payload(req, id.0));
            self.queue_msg(sid, msg, out);
        }
    }

    /// Retry one session's backlog; disconnect on overflow (sweep mode
    /// — readiness shards enforce the cap themselves).
    fn flush_session(&mut self, sid: SessionId) {
        let Some(conn) = self.conns.get_mut(&sid.0) else {
            return;
        };
        let Transport::Local { stream, wr } = &mut conn.transport else {
            return;
        };
        flush_backlog(stream, wr);
        if wr.len() > self.cfg.max_queued {
            self.disconnect(sid, "send queue overflow");
        }
    }

    fn disconnect(&mut self, sid: SessionId, reason: &'static str) {
        if let Some(conn) = self.conns.remove(&sid.0) {
            let msg = frame_msg(MSG_ERROR, reason.as_bytes());
            match conn.transport {
                Transport::Local { mut stream, .. } => {
                    let _ = stream.write_all(&msg);
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
                #[cfg(unix)]
                Transport::Shard(t) => {
                    if let IoState::Sharded(sh) = &self.io {
                        sh.shards[t].send([Cmd::Disconnect {
                            sid: sid.0,
                            notice: msg,
                        }]);
                    }
                }
            }
            self.repl.detach(sid);
            self.counters.disconnects += 1;
        }
    }
}

enum Handshake {
    Waiting(Pending),
    Attached,
    Dropped,
}

/// An elidable frame: a non-baseline delta with zero class blocks
/// (`SGN1` magic, delta kind, tick, block count 0 — 17 bytes exactly).
/// Baselines are never elided, so a fresh session always gets its
/// snapshot even over an all-idle region.
fn is_empty_delta(frame: &[u8]) -> bool {
    frame.len() == 17 && frame[4] == wire::KIND_DELTA && frame[13..17] == [0u8; 4]
}

/// Retry the backlog, then write as much of `msg` as the kernel takes;
/// queue the rest.
fn write_some(stream: &mut TcpStream, wr: &mut Vec<u8>, msg: &[u8]) {
    wr.extend_from_slice(msg);
    flush_backlog(stream, wr);
}

fn flush_backlog(stream: &mut TcpStream, wr: &mut Vec<u8>) {
    let mut off = 0;
    while off < wr.len() {
        match stream.write(&wr[off..]) {
            Ok(0) => break,
            Ok(n) => off += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // A write error surfaces as EOF on the next drain.
            Err(_) => break,
        }
    }
    wr.drain(..off);
}
