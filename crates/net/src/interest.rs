//! Declarative interest subscriptions.
//!
//! A client never writes netcode describing *how* to stay in sync; it
//! states *what* it wants to see — a class filter plus an inclusive
//! range predicate over the cluster's partition attribute — and the
//! replication server does the rest (SAGA's DSL move, applied to
//! interest management).
//!
//! ## Predicate syntax
//!
//! ```text
//! subscription := classes "where" attr "in" "[" lo "," hi "]"
//! classes      := "*" | ident ("," ident)*
//! ```
//!
//! Examples:
//!
//! * `Player where x in [120, 480]` — players with `120 ≤ x ≤ 480`;
//! * `Player, Npc where x in [0, 64]` — two classes, one window;
//! * `* where x in [-50, 50]` — every class carrying attribute `x`.
//!
//! Both bounds are inclusive. With `*`, classes lacking the attribute
//! are silently excluded; naming such a class explicitly is an error.

use sgl_storage::{Catalog, ScalarType};

use crate::NetError;

/// A parsed (unresolved) interest subscription.
#[derive(Debug, Clone, PartialEq)]
pub struct InterestSpec {
    /// Subscribed class names; empty means "every class with the
    /// attribute" (the `*` form).
    pub classes: Vec<String>,
    /// The spatial attribute the range predicate applies to. Sessions
    /// attached to a [`DistSim`](sgl_dist::DistSim) should use its
    /// partition attribute so stripe fan-out stays aligned.
    pub attr: String,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl InterestSpec {
    /// Subscribe to every class carrying `attr` within `[lo, hi]`.
    pub fn all(attr: &str, lo: f64, hi: f64) -> Self {
        InterestSpec {
            classes: Vec::new(),
            attr: attr.to_string(),
            lo,
            hi,
        }
    }

    /// Subscribe to the named classes within `[lo, hi]` along `attr`.
    pub fn classes(classes: &[&str], attr: &str, lo: f64, hi: f64) -> Self {
        InterestSpec {
            classes: classes.iter().map(|s| s.to_string()).collect(),
            attr: attr.to_string(),
            lo,
            hi,
        }
    }

    /// Does `x` satisfy the range predicate?
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Resolve against a catalog: find, per class, the column index of
    /// the interest attribute. Validates that explicitly named classes
    /// exist and carry the attribute as a `number`.
    pub(crate) fn resolve(&self, catalog: &Catalog) -> Result<ResolvedInterest, NetError> {
        if self.lo.is_nan() || self.hi.is_nan() || self.lo > self.hi {
            return Err(NetError::BadSubscription(format!(
                "empty interest range [{}, {}]",
                self.lo, self.hi
            )));
        }
        let mut attr_cols = vec![None; catalog.len()];
        let mut matched = false;
        if self.classes.is_empty() {
            for cdef in catalog.classes() {
                if let Some(col) = cdef.state.index_of(&self.attr) {
                    if cdef.state.col(col).ty == ScalarType::Number {
                        attr_cols[cdef.id.0 as usize] = Some(col);
                        matched = true;
                    }
                }
            }
            if !matched {
                return Err(NetError::BadSubscription(format!(
                    "no class has number attribute `{}`",
                    self.attr
                )));
            }
        } else {
            for name in &self.classes {
                let cdef = catalog
                    .class_by_name(name)
                    .ok_or_else(|| NetError::BadSubscription(format!("unknown class `{name}`")))?;
                let col = cdef.state.index_of(&self.attr).ok_or_else(|| {
                    NetError::BadSubscription(format!(
                        "class `{name}` has no attribute `{}`",
                        self.attr
                    ))
                })?;
                if cdef.state.col(col).ty != ScalarType::Number {
                    return Err(NetError::BadSubscription(format!(
                        "attribute `{}` of class `{name}` is not a number",
                        self.attr
                    )));
                }
                attr_cols[cdef.id.0 as usize] = Some(col);
            }
        }
        Ok(ResolvedInterest {
            spec: self.clone(),
            attr_cols,
        })
    }
}

impl std::str::FromStr for InterestSpec {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, NetError> {
        let bad = |what: &str| NetError::BadSubscription(format!("{what} in `{s}`"));
        let (classes_part, pred) = s
            .split_once(" where ")
            .ok_or_else(|| bad("missing `where`"))?;
        let classes: Vec<String> = match classes_part.trim() {
            "*" => Vec::new(),
            list => {
                let names: Vec<String> = list
                    .split(',')
                    .map(|c| c.trim().to_string())
                    .filter(|c| !c.is_empty())
                    .collect();
                if names.is_empty() {
                    return Err(bad("empty class list"));
                }
                names
            }
        };
        let (attr, range) = pred.split_once(" in ").ok_or_else(|| bad("missing `in`"))?;
        let attr = attr.trim();
        if attr.is_empty() {
            return Err(bad("missing attribute"));
        }
        let range = range.trim();
        let inner = range
            .strip_prefix('[')
            .and_then(|r| r.strip_suffix(']'))
            .ok_or_else(|| bad("range must be `[lo, hi]`"))?;
        let (lo, hi) = inner
            .split_once(',')
            .ok_or_else(|| bad("range needs `,`"))?;
        let lo: f64 = lo.trim().parse().map_err(|_| bad("bad lower bound"))?;
        let hi: f64 = hi.trim().parse().map_err(|_| bad("bad upper bound"))?;
        Ok(InterestSpec {
            classes,
            attr: attr.to_string(),
            lo,
            hi,
        })
    }
}

impl std::fmt::Display for InterestSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.classes.is_empty() {
            write!(f, "*")?;
        } else {
            write!(f, "{}", self.classes.join(", "))?;
        }
        write!(f, " where {} in [{}, {}]", self.attr, self.lo, self.hi)
    }
}

/// An [`InterestSpec`] resolved against a catalog: per class id, the
/// column index of the interest attribute (`None` = not subscribed).
#[derive(Debug, Clone)]
pub(crate) struct ResolvedInterest {
    pub spec: InterestSpec,
    pub attr_cols: Vec<Option<usize>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_through_display() {
        for src in [
            "Player where x in [120, 480]",
            "Player, Npc where x in [0, 64]",
            "* where x in [-50, 50.5]",
        ] {
            let spec: InterestSpec = src.parse().unwrap();
            let again: InterestSpec = spec.to_string().parse().unwrap();
            assert_eq!(spec, again, "{src}");
        }
        let spec: InterestSpec = "* where x in [-50, 50]".parse().unwrap();
        assert!(spec.classes.is_empty());
        assert!(spec.contains(-50.0) && spec.contains(50.0));
        assert!(!spec.contains(50.001));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for src in [
            "Player x in [0, 1]",       // missing where
            "Player where x [0, 1]",    // missing in
            "Player where x in (0, 1)", // wrong brackets
            "Player where x in [0 1]",  // missing comma
            "Player where x in [a, 1]", // bad number
            ", where x in [0, 1]",      // empty class list
            "Player where  in [0, 1]",  // missing attribute
        ] {
            assert!(src.parse::<InterestSpec>().is_err(), "{src}");
        }
    }
}
