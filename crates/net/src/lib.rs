#![forbid(unsafe_code)]
//! # sgl-net — client replication with declarative interest management
//!
//! The paper's endgame (§4.2) is games-as-databases serving massive
//! player counts; this crate is the client-facing half of that claim.
//! A client never writes netcode — it *declares* what it wants to see
//! (an [`InterestSpec`]: class filter + spatial range predicate) and
//! the [`ReplicationServer`] streams one compact binary frame per tick:
//! entities **entering** the area of interest (full rows), retained
//! entities' **changed attributes only**, and **exits/despawns**. A
//! [`ClientReplica`] decodes the stream into a mirror that is
//! value-identical to the server's view of the subscribed region —
//! "declarativeness: the work done by something else".
//!
//! ## Change detection and fan-out
//!
//! Delta extraction must not cost O(world) — and fan-out must not cost
//! O(sessions × changes). Every [`sgl_storage::Table`] keeps a
//! **generation counter per column**, bumped on each copy-on-write
//! mutation (and threaded through the engine's update phase, which
//! replaces only columns whose contents actually changed). Each poll:
//!
//! 1. **extracts** one shared changeset per (shard, class) extent
//!    whose counters moved — enters / changed cells / exits plus the
//!    attribute value bounds of what changed — diffed against a
//!    server-side snapshot, once, regardless of session count;
//! 2. **routes** it through the session interest index (an
//!    [`IntervalSet`](sgl_index::IntervalSet) of declared windows per
//!    (class, attribute)), visiting only sessions whose window
//!    overlaps the bounds ([`NetStats::sessions_visited`] vs
//!    [`NetStats::sessions_skipped`]);
//! 3. **projects** the changeset rows through each visited session's
//!    mirror into a reused per-session encode buffer; pruned sessions
//!    share one pre-encoded empty frame.
//!
//! Per-tick cost is O(changed rows + affected sessions). The
//! `net.rs`/`net_transport.rs` criterion benches measure this against
//! the per-session full-scan baseline
//! (`NetConfig { use_generations: false }`), which doubles as a
//! bit-identical oracle in `tests/replication.rs`.
//!
//! ## Distribution
//!
//! Sessions attach equally to a single [`sgl_engine::Engine`] world or
//! to a [`sgl_dist::DistSim`] cluster. A subscription window that spans
//! stripe boundaries fans out to every node whose stripe overlaps it,
//! and the per-node contributions are merged into one frame; the
//! shard→server traffic is reported in [`NetStats::fanout`] using
//! `sgl-dist`'s [`Traffic`](sgl_dist::Traffic) counters.
//!
//! ## The wire (`transport` / `listener` / `client`)
//!
//! The same frames travel over real TCP (`std::net`, length-prefixed
//! framing, no async runtime): a [`NetListener`] accepts connections
//! and handshakes them — the client's `HELLO` carries the protocol
//! version and its [`InterestSpec`]; the server answers `WELCOME` with
//! the session id, or `ERROR` and a close. Each tick the listener
//! **drains** client→server [input frames](crate::input) (`spawn` /
//! `set` / `despawn` intents, session- and tick-stamped), validates
//! them against the catalog and the session's owned-entity set, applies
//! the survivors through an [`InputSink`]
//! ([`Engine`](sgl_engine::Engine), [`DistSim`](sgl_dist::DistSim), or
//! `Simulation`), and **pumps** one `SGN1` delta frame per session with
//! per-session backpressure accounting ([`NetStats::backlog_bytes`]).
//! Structurally corrupt traffic disconnects its session; semantically
//! invalid intents are rejected and counted
//! ([`NetStats::inputs_rejected`]) without touching the world or other
//! sessions, and a per-session input budget
//! ([`ListenerConfig::max_intents_per_tick`]) drops excess intents
//! ([`NetStats::inputs_throttled`]) without a disconnect. The blocking
//! [`NetClient`] mirrors the subscribed region through a
//! [`ClientReplica`], pushes intents back, and can re-declare its
//! window live ([`NetClient::resubscribe`]: the next frame is the
//! symmetric difference — no reconnect, no mirror reset) — the cluster
//! path is end-to-end: socket client → listener → `DistSim` stripes →
//! delta frame back.
//!
//! ## Example
//!
//! ```
//! use sgl_engine::{Engine, EngineConfig};
//! use sgl_net::{ClientReplica, ReplicationServer};
//! use sgl_storage::Value;
//!
//! let src = r#"
//! class Unit {
//! state:
//!   number x = 0;
//!   number hp = 10;
//! effects:
//!   number damage : sum;
//! update:
//!   hp = hp - damage;
//! }
//! "#;
//! let game = sgl_compiler::compile(sgl_frontend::check(src).unwrap()).unwrap();
//! let mut engine = Engine::new(game, EngineConfig::default()).unwrap();
//! let near = engine.spawn("Unit", &[("x", Value::Number(5.0))]).unwrap();
//! let far = engine.spawn("Unit", &[("x", Value::Number(500.0))]).unwrap();
//!
//! // Declare interest; never write sync code.
//! let mut server = ReplicationServer::new(engine.world().catalog().clone());
//! let session = server.attach_str("Unit where x in [0, 100]").unwrap();
//! let mut replica = ClientReplica::new(engine.world().catalog().clone());
//!
//! engine.tick();
//! for (sid, frame) in server.poll(&engine) {
//!     assert_eq!(sid, session);
//!     replica.apply(&frame).unwrap();
//! }
//! let class = engine.world().class_id("Unit").unwrap();
//! assert!(replica.contains(class, near));
//! assert!(!replica.contains(class, far));
//! assert_eq!(replica.get(class, near, "hp"), Some(Value::Number(10.0)));
//! ```

mod changeset;
mod client;
pub mod input;
mod interest;
mod listener;
pub mod readiness;
mod replica;
mod server;
mod stats;
pub mod transport;
pub mod wire;

#[cfg(test)]
pub(crate) mod tests;

pub use client::{ClientEvent, NetClient, PendingClient};
pub use input::{apply_batch, BatchReport, InputBatch, InputSink, Intent};
pub use interest::InterestSpec;
pub use listener::{DrainReport, ListenerConfig, NetListener};
pub use readiness::{IoBackend, IoConfig, IoMode, IoShardStats};
pub use replica::{ApplySummary, ClientReplica};
pub use server::{NetConfig, ReplicationServer, ReplicationSource, SessionId};
pub use stats::{NetStats, SessionStats};

/// Replication errors.
#[derive(Debug, PartialEq, Eq)]
pub enum NetError {
    /// A wire frame was truncated, bit-flipped, or semantically
    /// inconsistent with the replica.
    Corrupt(&'static str),
    /// An interest subscription failed to parse or resolve.
    BadSubscription(String),
    /// A socket operation failed (connect, read, write, or the peer
    /// hung up).
    Io(String),
    /// The peer refused us: handshake rejection or a server `ERROR`
    /// notice before disconnecting.
    Refused(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
            NetError::BadSubscription(what) => write!(f, "bad subscription: {what}"),
            NetError::Io(what) => write!(f, "io: {what}"),
            NetError::Refused(what) => write!(f, "refused: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<&'static str> for NetError {
    fn from(what: &'static str) -> Self {
        NetError::Corrupt(what)
    }
}
