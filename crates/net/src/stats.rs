//! Per-tick replication statistics, in the style of
//! [`sgl_dist::DistStats`] (whose [`Traffic`] counters are reused for
//! the stripe fan-out accounting).
//!
//! # Reset/merge contract
//!
//! Every field of [`NetStats`] is **per-poll**: each
//! `ReplicationServer::poll` builds a fresh record and replaces `last`
//! wholesale (the listener then overlays the transport counters it
//! accumulated since the previous pump — drain runs before the tick,
//! the pump after, both land in the same record). [`SessionStats`] is
//! the one **cumulative** struct in the telemetry plane: it counts from
//! session attach and is never reset while the session lives.
//! Cross-poll aggregation belongs in the metrics registry via
//! [`NetStats::fold_into`].

use sgl_dist::Traffic;
use sgl_engine::ParallelStats;

/// Statistics of one [`ReplicationServer::poll`](crate::ReplicationServer::poll)
/// across all sessions.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Source tick the poll observed.
    pub tick: u64,
    /// Attached sessions.
    pub sessions: usize,
    /// Frames emitted (one per session).
    pub frames: u64,
    /// Total frame payload shipped to clients.
    pub client_traffic: Traffic,
    /// Entities that entered some session's area of interest.
    pub enters: u64,
    /// Entities that left some session's area of interest (but still
    /// exist in the world).
    pub exits: u64,
    /// Subscribed entities that despawned.
    pub despawns: u64,
    /// Changed `(entity, attribute)` cells streamed.
    pub updated_cells: u64,
    /// `(shard, class)` extent scans skipped because every generation
    /// counter matched the server's snapshot — the change-detection
    /// fast path. No rows were read for these. (Shared across sessions:
    /// an unchanged extent is skipped *once per poll*, not once per
    /// session.)
    pub skipped_scans: u64,
    /// Extents actually scanned: one shared changeset extraction per
    /// changed `(shard, class)` extent, plus one `(shard, class)` scan
    /// per session taking the full-scan path (baselines, pending
    /// resubscriptions, and `NetConfig { use_generations: false }`).
    pub scanned: u64,
    /// Sessions that did per-row work this poll: baseline/resub scans
    /// plus sessions the interest index routed a changed extent to.
    pub sessions_visited: u64,
    /// Sessions the interest index pruned: nothing overlapping their
    /// declared window changed, so they got a shared pre-encoded empty
    /// frame without touching a single row. The fan-out win is this
    /// number staying near `sessions` when changes are localized.
    pub sessions_skipped: u64,
    /// Shard → server merge traffic: one message per shard that
    /// contributed data to a fanned-out subscription, with the payload
    /// bytes it contributed (single-node sources never populate this).
    pub fanout: Traffic,
    /// Worker-pool activity of the shared changeset extraction (stage
    /// 1), when the server was handed a pool via
    /// [`ReplicationServer::set_pool`](crate::ReplicationServer::set_pool).
    pub parallel: ParallelStats,
    /// Client → server input traffic drained from sockets this tick
    /// (transport sources only; in-process polling never populates the
    /// transport counters below).
    pub inputs: Traffic,
    /// Input intents that passed validation and were applied.
    pub inputs_applied: u64,
    /// Input intents rejected by validation (unknown class/attribute,
    /// type mismatch, ownership violation, sink refusal).
    pub inputs_rejected: u64,
    /// Input intents dropped by the per-session per-tick budget
    /// ([`ListenerConfig::max_intents_per_tick`](crate::ListenerConfig));
    /// the session lives on — throttling is not a protocol violation.
    pub inputs_throttled: u64,
    /// Outbound bytes still queued in per-session send buffers after
    /// the pump — the backpressure the sockets exerted this tick.
    pub backlog_bytes: u64,
    /// Sessions disconnected this tick (protocol violations, corrupt
    /// frames, send-queue overflow, or hangups).
    pub disconnects: u64,
    /// I/O shard threads serving the transport (0 in sweep mode — the
    /// readiness-vs-sweep discriminant in a stats dump).
    pub io_shards: usize,
    /// Readiness waits (`epoll_wait`/`poll` syscalls) the shards issued
    /// since the previous pump. A mostly-idle node shows this staying
    /// near `io_shards` per tick while `sessions` grows — the
    /// linear-sweep cost the readiness loop deleted.
    pub epoll_waits: u64,
    /// Shard wakeups that found no commands and no socket events since
    /// the previous pump (pipe self-wakes that raced with work already
    /// done). Persistent growth means wake batching is broken.
    pub wakeups_spurious: u64,
    /// Empty delta frames skipped at the transport this tick
    /// ([`ListenerConfig::elide_empty_frames`](crate::ListenerConfig);
    /// always 0 with the protocol-default frame-per-tick contract).
    pub frames_elided: u64,
}

impl NetStats {
    /// Total bytes shipped to clients this poll.
    pub fn total_bytes(&self) -> u64 {
        self.client_traffic.bytes
    }

    /// Fold this poll into a metrics registry (cross-poll aggregation:
    /// counters sum, queue depths feed gauges and histograms).
    pub fn fold_into(&self, reg: &mut sgl_obs::Registry) {
        reg.counter_add("net.polls", 1);
        reg.counter_add("net.frames", self.frames);
        reg.counter_add("net.frame_bytes", self.client_traffic.bytes);
        reg.counter_add("net.enters", self.enters);
        reg.counter_add("net.exits", self.exits);
        reg.counter_add("net.despawns", self.despawns);
        reg.counter_add("net.updated_cells", self.updated_cells);
        reg.counter_add("net.scanned", self.scanned);
        reg.counter_add("net.skipped_scans", self.skipped_scans);
        reg.counter_add("net.sessions_visited", self.sessions_visited);
        reg.counter_add("net.sessions_skipped", self.sessions_skipped);
        reg.counter_add("net.input_msgs", self.inputs.msgs);
        reg.counter_add("net.input_bytes", self.inputs.bytes);
        reg.counter_add("net.inputs_applied", self.inputs_applied);
        reg.counter_add("net.inputs_rejected", self.inputs_rejected);
        reg.counter_add("net.inputs_throttled", self.inputs_throttled);
        reg.counter_add("net.disconnects", self.disconnects);
        reg.gauge_set("net.sessions", self.sessions as f64);
        reg.observe("net.backlog_bytes", self.backlog_bytes);
        // Readiness-transport plane: absent from sweep-mode dumps so the
        // oracle's registry output stays byte-stable.
        if self.io_shards > 0 {
            reg.gauge_set("net.io_shards", self.io_shards as f64);
            reg.counter_add("net.io_shard.epoll_waits", self.epoll_waits);
            reg.counter_add("net.io_shard.wakeups_spurious", self.wakeups_spurious);
        }
        if self.frames_elided > 0 {
            reg.counter_add("net.frames_elided", self.frames_elided);
        }
    }
}

/// Cumulative per-session statistics.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Frames emitted to this session.
    pub frames: u64,
    /// Total frame bytes emitted to this session.
    pub bytes: u64,
    /// Entities that entered the area of interest.
    pub enters: u64,
    /// Entities that left it (exit + despawn).
    pub exits: u64,
    /// Changed cells streamed.
    pub updated_cells: u64,
    /// Input intents from this session that were applied.
    pub inputs_applied: u64,
    /// Input intents from this session that validation rejected.
    pub inputs_rejected: u64,
    /// Input intents from this session dropped by the per-tick budget.
    pub inputs_throttled: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pin the registry folding: counters sum across polls, gauges keep
    /// the latest value, queue depths feed a histogram.
    #[test]
    fn fold_into_registry_sums_counters() {
        let s = NetStats {
            frames: 3,
            sessions: 2,
            inputs_applied: 5,
            backlog_bytes: 100,
            client_traffic: Traffic { msgs: 3, bytes: 64 },
            ..NetStats::default()
        };
        let mut reg = sgl_obs::Registry::new();
        s.fold_into(&mut reg);
        s.fold_into(&mut reg);
        assert_eq!(reg.counter("net.polls"), 2);
        assert_eq!(reg.counter("net.frames"), 6);
        assert_eq!(reg.counter("net.frame_bytes"), 128);
        assert_eq!(reg.counter("net.inputs_applied"), 10);
        assert_eq!(reg.gauge("net.sessions"), Some(2.0));
        assert_eq!(reg.histogram("net.backlog_bytes").unwrap().count(), 2);
    }

    #[test]
    fn totals_come_from_client_traffic() {
        let s = NetStats {
            client_traffic: Traffic {
                msgs: 2,
                bytes: 300,
            },
            ..NetStats::default()
        };
        assert_eq!(s.total_bytes(), 300);
    }
}
