//! The client end of the wire: a blocking [`NetClient`] wraps a
//! [`ClientReplica`] over a TCP socket — connect, declare interest,
//! receive one delta frame per server tick, and push intents back.
//!
//! ```no_run
//! use sgl_net::{InterestSpec, Intent, NetClient};
//! # fn main() -> Result<(), sgl_net::NetError> {
//! # let catalog = sgl_storage::Catalog::new();
//! let spec: InterestSpec = "Player where x in [0, 100]".parse()?;
//! let mut client = NetClient::connect("127.0.0.1:4000", catalog, &spec)?;
//! loop {
//!     client.recv_frame()?; // blocks for the next server tick
//!     for (_req, id) in client.take_spawned() {
//!         println!("server granted us {id:?}");
//!     }
//! }
//! # }
//! ```

use std::net::{TcpStream, ToSocketAddrs};

use sgl_storage::{Catalog, EntityId};

use crate::input::{self, InputBatch, Intent};
use crate::replica::{ApplySummary, ClientReplica};
use crate::server::SessionId;
use crate::transport::{
    decode_spawned, decode_welcome, hello_payload, read_msg, resub_payload, write_msg,
    DEFAULT_MAX_MSG, MSG_ERROR, MSG_FRAME, MSG_HELLO, MSG_INPUT, MSG_RESUB, MSG_SPAWNED, MSG_STATS,
    MSG_WELCOME, PROTOCOL_VERSION,
};
use crate::{InterestSpec, NetError};

/// One message-level event delivered by [`NetClient::recv`].
#[derive(Debug, Clone, PartialEq)]
pub enum ClientEvent {
    /// A replication frame arrived and was applied to the replica.
    Frame(ApplySummary),
    /// The server acknowledged a spawn intent: `(req token, id)`.
    Spawned(u32, EntityId),
    /// The server answered a [`NetClient::request_stats`] with its
    /// metrics dump (line-oriented `counter/gauge/hist` text).
    Stats(String),
}

/// A connection whose `HELLO` is sent but whose `WELCOME` has not been
/// read yet. Splitting the handshake lets single-threaded harnesses
/// open several clients before the server runs its accept loop.
pub struct PendingClient {
    stream: TcpStream,
    catalog: Catalog,
}

impl PendingClient {
    /// Block until the server answers, completing the handshake.
    pub fn finish(self) -> Result<NetClient, NetError> {
        let mut stream = self.stream;
        let (kind, payload) = read_msg(&mut stream, DEFAULT_MAX_MSG)?;
        match kind {
            k if k == MSG_ERROR => Err(NetError::Refused(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            k if k == MSG_WELCOME => {
                let (version, session) = decode_welcome(&payload)?;
                if version != PROTOCOL_VERSION {
                    return Err(NetError::Refused(format!(
                        "server speaks protocol {version}, client speaks {PROTOCOL_VERSION}"
                    )));
                }
                Ok(NetClient {
                    stream,
                    session: SessionId(session),
                    replica: ClientReplica::new(self.catalog),
                    spawned: Vec::new(),
                })
            }
            _ => Err(NetError::Corrupt("unexpected handshake reply")),
        }
    }
}

/// A blocking TCP replication client: a [`ClientReplica`] kept in sync
/// by the frame stream, plus an intent pipe back to the server.
pub struct NetClient {
    stream: TcpStream,
    session: SessionId,
    replica: ClientReplica,
    /// Spawn acknowledgements collected while waiting for frames.
    spawned: Vec<(u32, EntityId)>,
}

impl NetClient {
    /// Connect, subscribe, and block until the server answers.
    pub fn connect(
        addr: impl ToSocketAddrs,
        catalog: Catalog,
        spec: &InterestSpec,
    ) -> Result<NetClient, NetError> {
        Self::start_connect(addr, catalog, spec)?.finish()
    }

    /// Connect and send `HELLO` without waiting for the reply; call
    /// [`PendingClient::finish`] to complete the handshake.
    pub fn start_connect(
        addr: impl ToSocketAddrs,
        catalog: Catalog,
        spec: &InterestSpec,
    ) -> Result<PendingClient, NetError> {
        let mut stream = TcpStream::connect(addr).map_err(|e| NetError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        write_msg(
            &mut stream,
            MSG_HELLO,
            &hello_payload(PROTOCOL_VERSION, &spec.to_string()),
        )?;
        Ok(PendingClient { stream, catalog })
    }

    /// The session id the server assigned.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The mirror of the subscribed region.
    pub fn replica(&self) -> &ClientReplica {
        &self.replica
    }

    /// Server tick of the last applied frame.
    pub fn tick(&self) -> u64 {
        self.replica.tick()
    }

    /// Block for the next message. Frames are applied to the replica
    /// before being reported; an `ERROR` notice (or a closed socket)
    /// surfaces as `Err` — the session is over.
    pub fn recv(&mut self) -> Result<ClientEvent, NetError> {
        let (kind, payload) = read_msg(&mut self.stream, DEFAULT_MAX_MSG)?;
        match kind {
            k if k == MSG_FRAME => {
                let summary = self.replica.apply(&payload)?;
                Ok(ClientEvent::Frame(summary))
            }
            k if k == MSG_SPAWNED => {
                let (req, id) = decode_spawned(&payload)?;
                let id = EntityId(id);
                self.spawned.push((req, id));
                Ok(ClientEvent::Spawned(req, id))
            }
            k if k == MSG_STATS => Ok(ClientEvent::Stats(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            k if k == MSG_ERROR => Err(NetError::Refused(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            _ => Err(NetError::Corrupt("unexpected message kind")),
        }
    }

    /// Block until the next replication frame, collecting any spawn
    /// acknowledgements that arrive first (fetch them with
    /// [`NetClient::take_spawned`]).
    pub fn recv_frame(&mut self) -> Result<ApplySummary, NetError> {
        loop {
            if let ClientEvent::Frame(summary) = self.recv()? {
                return Ok(summary);
            }
        }
    }

    /// Spawn acknowledgements received so far (drains the queue).
    pub fn take_spawned(&mut self) -> Vec<(u32, EntityId)> {
        std::mem::take(&mut self.spawned)
    }

    /// Re-declare this session's area of interest without reconnecting.
    /// The server swaps the subscription atomically; the next frame is
    /// a *delta* carrying exits for entities outside the new window and
    /// enters for newly covered ones — the replica needs no reset. A
    /// spec the server cannot resolve against the catalog is treated as
    /// a protocol violation and ends the session.
    pub fn resubscribe(&mut self, spec: &InterestSpec) -> Result<(), NetError> {
        write_msg(
            &mut self.stream,
            MSG_RESUB,
            &resub_payload(&spec.to_string()),
        )
    }

    /// Ask the server for its metrics dump without waiting for the
    /// reply; it arrives as a [`ClientEvent::Stats`] on a later
    /// [`NetClient::recv`] (the server answers from its next input
    /// drain). For the blocking convenience see
    /// [`NetClient::request_stats`].
    pub fn send_stats_request(&mut self) -> Result<(), NetError> {
        write_msg(&mut self.stream, MSG_STATS, &[])
    }

    /// Ask the server for its metrics dump and block until the reply
    /// arrives, applying any frames (and collecting any spawn
    /// acknowledgements) that were queued ahead of it. The server
    /// answers from its next input drain, so in the canonical loop the
    /// reply rides behind at most one tick's frame.
    pub fn request_stats(&mut self) -> Result<String, NetError> {
        self.send_stats_request()?;
        loop {
            if let ClientEvent::Stats(text) = self.recv()? {
                return Ok(text);
            }
        }
    }

    /// Send a batch of intents, stamped with this session's id and the
    /// last applied server tick.
    pub fn send(&mut self, intents: Vec<Intent>) -> Result<(), NetError> {
        let batch = InputBatch {
            session: self.session.0,
            tick: self.replica.tick(),
            intents,
        };
        write_msg(&mut self.stream, MSG_INPUT, &input::encode(&batch))
    }
}
