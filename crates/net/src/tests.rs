//! Unit tests for the replication pipeline against hand-built worlds
//! (no SGL source needed) and a compiled game.

use sgl_engine::World;
use sgl_storage::{
    Catalog, ClassDef, ClassId, ColumnSpec, EntityId, Owner, ScalarType, Schema, Value,
};

use crate::{ClientReplica, InterestSpec, NetConfig, ReplicationServer};

/// Class 0 carries all four value types; class 1 is a second extent
/// with its own `x`.
pub(crate) fn two_class_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add(ClassDef {
        id: ClassId(0),
        name: "Unit".into(),
        state: Schema::from_cols(vec![
            ColumnSpec::new("x", ScalarType::Number),
            ColumnSpec::new("alive", ScalarType::Bool),
            ColumnSpec::new("buddy", ScalarType::Ref(ClassId(0))),
            ColumnSpec::new("friends", ScalarType::Set(ClassId(0))),
        ]),
        effects: vec![],
        owners: vec![Owner::Expression; 4],
    });
    cat.add(ClassDef {
        id: ClassId(1),
        name: "Npc".into(),
        state: Schema::from_cols(vec![
            ColumnSpec::new("x", ScalarType::Number),
            ColumnSpec::new("mood", ScalarType::Number),
        ]),
        effects: vec![],
        owners: vec![Owner::Expression; 2],
    });
    cat
}

/// Server-side ground truth: the subscribed region read straight from
/// the world.
fn expected_region(
    world: &World,
    class: ClassId,
    spec: &InterestSpec,
) -> Vec<(EntityId, Vec<Value>)> {
    let table = world.table(class);
    let col = table.schema().index_of(&spec.attr).unwrap();
    let xs = table.column(col).f64();
    let mut rows: Vec<(EntityId, Vec<Value>)> = table
        .ids()
        .iter()
        .enumerate()
        .filter(|(row, id)| spec.contains(xs[*row]) && !world.is_ghost(class, **id))
        .map(|(row, &id)| {
            (
                id,
                (0..table.schema().len())
                    .map(|ci| table.column(ci).get(row))
                    .collect(),
            )
        })
        .collect();
    rows.sort_unstable_by_key(|(id, _)| *id);
    rows
}

fn assert_mirror_matches(
    replica: &ClientReplica,
    world: &World,
    class: ClassId,
    spec: &InterestSpec,
) {
    let expected = expected_region(world, class, spec);
    let mirror = replica.class_mirror(class);
    assert_eq!(mirror.len(), expected.len(), "population diverged");
    for (id, values) in &expected {
        assert_eq!(
            mirror.get(id),
            Some(values),
            "mirror of {id:?} diverged from server view"
        );
    }
}

#[test]
fn baseline_then_deltas_keep_the_replica_identical() {
    let cat = two_class_catalog();
    let mut world = World::new(cat.clone());
    let unit = ClassId(0);
    let spec: InterestSpec = "Unit where x in [0, 100]".parse().unwrap();

    let a = world.spawn(unit, &[("x", Value::Number(10.0))]).unwrap();
    let b = world.spawn(unit, &[("x", Value::Number(50.0))]).unwrap();
    let c = world.spawn(unit, &[("x", Value::Number(250.0))]).unwrap();

    let mut server = ReplicationServer::new(cat.clone());
    let sid = server.attach(&spec).unwrap();
    let mut replica = ClientReplica::new(cat.clone());

    // Baseline: a and b, not c.
    let frames = server.poll(&world);
    assert_eq!(frames.len(), 1);
    let summary = replica.apply(&frames[0].1).unwrap();
    assert_eq!(summary.enters, 2);
    assert_mirror_matches(&replica, &world, unit, &spec);
    assert!(!replica.contains(unit, c));

    // Nothing changed: the next frame is empty and every extent scan
    // was skipped by generation counters.
    world.advance_tick();
    let frames = server.poll(&world);
    let summary = replica.apply(&frames[0].1).unwrap();
    assert_eq!(summary, crate::ApplySummary::default());
    assert_eq!(server.last_stats().scanned, 0);
    assert!(server.last_stats().skipped_scans > 0);

    // One attribute changes → exactly one cell streams.
    world.set(a, "alive", &Value::Bool(true)).unwrap();
    let frames = server.poll(&world);
    let summary = replica.apply(&frames[0].1).unwrap();
    assert_eq!(summary.updated_cells, 1);
    assert_mirror_matches(&replica, &world, unit, &spec);

    // Boundary crossing both ways + a despawn.
    world.set(b, "x", &Value::Number(150.0)).unwrap(); // exits
    world.set(c, "x", &Value::Number(99.0)).unwrap(); // enters
    world.despawn(unit, a); // despawns
    let frames = server.poll(&world);
    let summary = replica.apply(&frames[0].1).unwrap();
    assert_eq!(summary.enters, 1);
    assert_eq!(summary.exits, 2);
    assert_mirror_matches(&replica, &world, unit, &spec);
    let stats = server.last_stats();
    assert_eq!(stats.exits, 1);
    assert_eq!(stats.despawns, 1);

    let sstats = server.session_stats(sid).unwrap();
    assert_eq!(sstats.frames, 4);
    assert_eq!(sstats.enters, 3);
    assert!(sstats.bytes > 0);
}

#[test]
fn class_filter_and_star_subscriptions() {
    let cat = two_class_catalog();
    let mut world = World::new(cat.clone());
    let unit = ClassId(0);
    let npc = ClassId(1);
    world.spawn(unit, &[("x", Value::Number(5.0))]).unwrap();
    world.spawn(npc, &[("x", Value::Number(5.0))]).unwrap();

    let mut server = ReplicationServer::new(cat.clone());
    let only_units = server.attach_str("Unit where x in [0, 10]").unwrap();
    let star = server.attach_str("* where x in [0, 10]").unwrap();
    let mut ru = ClientReplica::new(cat.clone());
    let mut rs = ClientReplica::new(cat.clone());

    for (sid, frame) in server.poll(&world) {
        if sid == only_units {
            ru.apply(&frame).unwrap();
        } else {
            assert_eq!(sid, star);
            rs.apply(&frame).unwrap();
        }
    }
    assert_eq!(ru.population(), 1);
    assert_eq!(rs.population(), 2);
}

#[test]
fn bad_subscriptions_are_rejected() {
    let cat = two_class_catalog();
    let mut server = ReplicationServer::new(cat);
    assert!(server.attach_str("Ghost where x in [0, 1]").is_err());
    assert!(server.attach_str("Unit where nope in [0, 1]").is_err());
    assert!(
        server.attach_str("Unit where alive in [0, 1]").is_err(),
        "non-number attr"
    );
    assert!(
        server.attach_str("Unit where x in [5, 1]").is_err(),
        "empty range"
    );
    assert!(server.attach_str("* where nothing in [0, 1]").is_err());
}

#[test]
fn full_scan_mode_produces_identical_frames() {
    let cat = two_class_catalog();
    let mut world = World::new(cat.clone());
    let unit = ClassId(0);
    let mut ids = Vec::new();
    for i in 0..20 {
        ids.push(
            world
                .spawn(unit, &[("x", Value::Number(i as f64 * 10.0))])
                .unwrap(),
        );
    }
    let mut gen_server = ReplicationServer::new(cat.clone());
    let mut scan_server = ReplicationServer::with_config(
        cat.clone(),
        NetConfig {
            use_generations: false,
        },
    );
    gen_server.attach_str("Unit where x in [25, 125]").unwrap();
    scan_server.attach_str("Unit where x in [25, 125]").unwrap();
    let mut rg = ClientReplica::new(cat.clone());
    let mut rs = ClientReplica::new(cat.clone());

    for step in 0..4 {
        if step == 2 {
            world.set(ids[4], "x", &Value::Number(500.0)).unwrap();
            world.set(ids[0], "x", &Value::Number(60.0)).unwrap();
        }
        let fg = gen_server.poll(&world);
        let fs = scan_server.poll(&world);
        assert_eq!(
            fg[0].1, fs[0].1,
            "step {step}: frames must be bit-identical"
        );
        rg.apply(&fg[0].1).unwrap();
        rs.apply(&fs[0].1).unwrap();
        world.advance_tick();
    }
    assert_eq!(rg.population(), rs.population());
    // The generation server skipped work; the full scanner never does.
    assert!(gen_server.last_stats().skipped_scans > 0);
    assert_eq!(scan_server.last_stats().skipped_scans, 0);
}

#[test]
fn preview_does_not_commit() {
    let cat = two_class_catalog();
    let mut world = World::new(cat.clone());
    let unit = ClassId(0);
    world.spawn(unit, &[("x", Value::Number(1.0))]).unwrap();
    let mut server = ReplicationServer::new(cat.clone());
    server.attach_str("Unit where x in [0, 10]").unwrap();

    let p1 = server.preview(&world);
    let p2 = server.preview(&world);
    assert_eq!(p1[0].1, p2[0].1, "previews are repeatable");
    // The real poll still ships the baseline.
    let frames = server.poll(&world);
    assert_eq!(frames[0].1, p1[0].1);
    let mut replica = ClientReplica::new(cat);
    assert_eq!(replica.apply(&frames[0].1).unwrap().enters, 1);
}

#[test]
fn detached_sessions_stop_streaming() {
    let cat = two_class_catalog();
    let mut world = World::new(cat.clone());
    world.spawn(ClassId(0), &[]).unwrap();
    let mut server = ReplicationServer::new(cat);
    let a = server.attach_str("Unit where x in [-1, 1]").unwrap();
    let b = server.attach_str("Unit where x in [-1, 1]").unwrap();
    assert_eq!(server.session_count(), 2);
    assert!(server.detach(a));
    assert!(!server.detach(a), "double detach is a no-op");
    let frames = server.poll(&world);
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].0, b);
}

/// Detached session slots go on a free list and are reused by the next
/// attach — a long-lived server with session churn does not grow its
/// slot vector (or its per-poll iteration) without bound.
#[test]
fn detached_slots_are_reused() {
    let cat = two_class_catalog();
    let mut world = World::new(cat.clone());
    world.spawn(ClassId(0), &[]).unwrap();
    let mut server = ReplicationServer::new(cat.clone());
    let a = server.attach_str("Unit where x in [-1, 1]").unwrap();
    let b = server.attach_str("Unit where x in [-1, 1]").unwrap();
    assert!(server.detach(a));
    let c = server.attach_str("Unit where x in [0, 5]").unwrap();
    assert_eq!(c, a, "freed slot is recycled");
    assert_eq!(server.session_count(), 2);

    // The recycled session starts from scratch: a fresh baseline, its
    // own subscription, no inherited mirror.
    let frames = server.poll(&world);
    assert_eq!(frames.len(), 2);
    let mut rc = ClientReplica::new(cat.clone());
    for (sid, frame) in &frames {
        if *sid == c {
            assert_eq!(rc.apply(frame).unwrap().enters, 1);
        }
    }
    assert_eq!(server.session_interest(c).map(|s| s.hi), Some(5.0));
    assert_eq!(server.session_interest(b).map(|s| s.hi), Some(1.0));

    // Churning 100 sessions through one slot never grows the vector.
    for _ in 0..100 {
        let s = server.attach_str("Npc where x in [0, 1]").unwrap();
        assert!(server.detach(s));
    }
    assert_eq!(server.session_count(), 2);
    let frames = server.poll(&world);
    assert_eq!(frames.len(), 2, "no phantom slots in the poll");
}

/// The interest index prunes sessions whose window misses everything
/// that changed: they receive a shared pre-encoded empty frame and are
/// counted in `sessions_skipped`, not `sessions_visited`.
#[test]
fn unaffected_sessions_share_one_empty_frame() {
    let cat = two_class_catalog();
    let mut world = World::new(cat.clone());
    let unit = ClassId(0);
    let a = world.spawn(unit, &[("x", Value::Number(10.0))]).unwrap();
    world.spawn(unit, &[("x", Value::Number(110.0))]).unwrap();
    world.spawn(unit, &[("x", Value::Number(210.0))]).unwrap();

    let mut server = ReplicationServer::new(cat.clone());
    for w in 0..3 {
        let lo = w as f64 * 100.0;
        server
            .attach(&InterestSpec::classes(&["Unit"], "x", lo, lo + 99.0))
            .unwrap();
    }
    let baseline = server.poll(&world);
    assert_eq!(server.last_stats().sessions_visited, 3, "baselines scan");

    // Stationary: all three sessions skip, and the skipped frames are
    // the *same bytes* (one shared empty delta frame).
    world.advance_tick();
    let frames = server.poll(&world);
    let stats = server.last_stats();
    assert_eq!((stats.sessions_visited, stats.sessions_skipped), (0, 3));
    assert_eq!(frames[0].1, frames[1].1);
    assert_eq!(frames[1].1, frames[2].1);

    // A change in window 0 visits session 0 only.
    world.set(a, "alive", &Value::Bool(true)).unwrap();
    let frames = server.poll(&world);
    let stats = server.last_stats();
    assert_eq!((stats.sessions_visited, stats.sessions_skipped), (1, 2));
    // Session 0's mirror picks up the change through the delta chain.
    let mut replica = ClientReplica::new(cat.clone());
    replica.apply(&baseline[0].1).unwrap();
    replica.apply(&frames[0].1).unwrap();
    assert_eq!(replica.get(unit, a, "alive"), Some(Value::Bool(true)));
}

/// Regression (review finding): marking a live, mirrored row as a
/// ghost must reach replicated clients as an exit — including through
/// the shared changeset's membership-stable fast path, which trusts
/// generation counters to reveal membership flips. `World::mark_ghost`
/// therefore touches the extent's generations; both change-detection
/// modes must agree bit-for-bit.
#[test]
fn ghost_marks_on_live_rows_replicate_as_exits() {
    let cat = two_class_catalog();
    let mut world = World::new(cat.clone());
    let unit = ClassId(0);
    let a = world.spawn(unit, &[("x", Value::Number(10.0))]).unwrap();
    let b = world.spawn(unit, &[("x", Value::Number(20.0))]).unwrap();

    let mut gen_server = ReplicationServer::new(cat.clone());
    let mut scan_server = ReplicationServer::with_config(
        cat.clone(),
        NetConfig {
            use_generations: false,
        },
    );
    gen_server.attach_str("Unit where x in [0, 100]").unwrap();
    scan_server.attach_str("Unit where x in [0, 100]").unwrap();
    let mut replica = ClientReplica::new(cat.clone());
    replica.apply(&gen_server.poll(&world)[0].1).unwrap();
    scan_server.poll(&world);
    assert_eq!(replica.population(), 2);

    // Flip `a` to a ghost — no row insert/remove — while an unrelated
    // cell change keeps the extent "partially dirty" (the exact shape
    // that used to sneak past the membership-stable fast path).
    world.mark_ghost(unit, a);
    world.set(b, "alive", &Value::Bool(true)).unwrap();
    let fg = gen_server.poll(&world);
    let fs = scan_server.poll(&world);
    assert_eq!(fg[0].1, fs[0].1, "modes must agree on the ghost flip");
    let summary = replica.apply(&fg[0].1).unwrap();
    assert_eq!(summary.exits, 1, "the ghost left the mirror");
    assert!(!replica.contains(unit, a));
    assert_eq!(
        replica.get(unit, b, "alive"),
        Some(Value::Bool(true)),
        "the unrelated change still streams"
    );
}

#[test]
fn semantic_inconsistencies_are_corrupt() {
    let cat = two_class_catalog();
    let mut replica = ClientReplica::new(cat.clone());
    use crate::wire::{encode, ClassDelta, Frame};

    // Update for an entity the mirror never held.
    let frame = Frame {
        baseline: false,
        tick: 1,
        classes: vec![(
            ClassId(0),
            ClassDelta {
                updates: vec![(EntityId(7), vec![(0, Value::Number(1.0))])],
                ..ClassDelta::default()
            },
        )],
    };
    assert!(replica.apply(&encode(&frame)).is_err());

    // Exit for an unknown entity.
    let frame = Frame {
        baseline: false,
        tick: 1,
        classes: vec![(
            ClassId(0),
            ClassDelta {
                exits: vec![EntityId(7)],
                ..ClassDelta::default()
            },
        )],
    };
    assert!(replica.apply(&encode(&frame)).is_err());
}
