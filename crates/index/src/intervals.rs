//! 1-D interval **overlap** index, built on the orthogonal range tree.
//!
//! An inclusive interval `[lo, hi]` is stored as the 2-D point
//! `(lo, hi)`; "which stored intervals overlap the query `[qlo, qhi]`"
//! is then the dominance box
//!
//! ```text
//! lo ∈ (-∞, qhi]  ∧  hi ∈ [qlo, +∞)
//! ```
//!
//! answered by a [`RangeTree`] query in O(log² n + k). This is the
//! structure `sgl-net` uses as its **session interest index**: sessions
//! declare range predicates over an attribute, per-tick changesets carry
//! the value bounds of what actually changed, and only the sessions
//! whose declared window overlaps those bounds are visited — the
//! paper's range-tree machinery, pointed at interest management instead
//! of entity joins.

use crate::points::PointSet;
use crate::range_tree::RangeTree;
use crate::SpatialIndex;

/// A static set of inclusive 1-D intervals supporting overlap stabs.
/// Build is O(n log n); rebuild when the interval population changes
/// (the expected churn — subscriptions — is far rarer than queries).
pub struct IntervalSet {
    tree: RangeTree,
    /// Original index of each stored (non-empty) interval: empty
    /// intervals are excluded from the tree, not given sentinel
    /// coordinates (the raw pair `(5.0, 3.0)` would *pass* the
    /// dominance test for a query spanning both bounds).
    ids: Vec<u32>,
    len: usize,
}

impl IntervalSet {
    /// Build from `(lo, hi)` pairs. Entries are reported by their index
    /// in `intervals`. Empty intervals (`lo > hi` or NaN bounds) keep
    /// their slot but can never overlap anything.
    pub fn build(intervals: &[(f64, f64)]) -> Self {
        let mut points = PointSet::new(2);
        let mut ids = Vec::new();
        for (i, &(lo, hi)) in intervals.iter().enumerate() {
            if lo <= hi {
                points.push(&[lo, hi]);
                ids.push(i as u32);
            }
        }
        IntervalSet {
            tree: RangeTree::build(&points),
            ids,
            len: intervals.len(),
        }
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append the indexes of every stored interval overlapping the
    /// inclusive query `[lo, hi]` to `out`, in unspecified order.
    pub fn overlapping(&self, lo: f64, hi: f64, out: &mut Vec<u32>) {
        if lo > hi || lo.is_nan() || hi.is_nan() {
            return;
        }
        let start = out.len();
        self.tree
            .query(&[f64::NEG_INFINITY, lo], &[hi, f64::INFINITY], out);
        for slot in &mut out[start..] {
            *slot = self.ids[*slot as usize];
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes() + self.ids.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(intervals: &[(f64, f64)], lo: f64, hi: f64) -> Vec<u32> {
        intervals
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a <= hi && b >= lo)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn overlap_matches_naive_scan() {
        let mut state = 0x9E37_79B9u64 | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0
        };
        let intervals: Vec<(f64, f64)> = (0..200)
            .map(|_| {
                let a = next();
                (a, a + next() * 0.2)
            })
            .collect();
        let set = IntervalSet::build(&intervals);
        for (qlo, qhi) in [(0.0, 100.0), (10.0, 12.0), (50.0, 50.0), (99.9, 150.0)] {
            let mut got = Vec::new();
            set.overlapping(qlo, qhi, &mut got);
            got.sort_unstable();
            assert_eq!(got, naive(&intervals, qlo, qhi), "query [{qlo}, {qhi}]");
        }
    }

    #[test]
    fn disjoint_windows_prune() {
        // 64 disjoint unit windows; a stab inside one hits exactly it.
        let intervals: Vec<(f64, f64)> = (0..64)
            .map(|i| (i as f64 * 10.0, i as f64 * 10.0 + 1.0))
            .collect();
        let set = IntervalSet::build(&intervals);
        let mut out = Vec::new();
        set.overlapping(30.2, 30.9, &mut out);
        assert_eq!(out, vec![3]);
        out.clear();
        set.overlapping(5.0, 9.0, &mut out);
        assert!(out.is_empty(), "gap between windows");
    }

    #[test]
    fn empty_intervals_never_match() {
        // An inverted or NaN-bounded interval keeps its slot but can
        // never be reported, even for queries spanning both bounds.
        let set = IntervalSet::build(&[(5.0, 3.0), (f64::NAN, 1.0), (2.0, 4.0)]);
        let mut out = Vec::new();
        set.overlapping(0.0, 10.0, &mut out);
        assert_eq!(out, vec![2]);
        out.clear();
        set.overlapping(f64::NEG_INFINITY, f64::INFINITY, &mut out);
        assert_eq!(out, vec![2]);
        assert_eq!(set.len(), 3, "empty intervals keep their slots");
    }

    #[test]
    fn inclusive_endpoints_and_empty_queries() {
        let set = IntervalSet::build(&[(0.0, 10.0), (10.0, 20.0)]);
        let mut out = Vec::new();
        set.overlapping(10.0, 10.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1], "shared endpoint overlaps both");
        out.clear();
        set.overlapping(5.0, 1.0, &mut out);
        assert!(out.is_empty(), "inverted query is empty");
        out.clear();
        set.overlapping(f64::NAN, 1.0, &mut out);
        assert!(out.is_empty(), "NaN query is empty");
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert!(IntervalSet::build(&[]).is_empty());
    }
}
