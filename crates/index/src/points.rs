//! The build input shared by all indexes: a flat, row-major point buffer.

/// A set of `len` points in `dims` dimensions, stored row-major in one
/// contiguous buffer. Row index `i` (a `u32`) is the identifier indexes
/// report back.
#[derive(Debug, Clone, Default)]
pub struct PointSet {
    dims: usize,
    coords: Vec<f64>,
}

impl PointSet {
    /// An empty point set of the given dimensionality.
    pub fn new(dims: usize) -> Self {
        assert!(dims >= 1, "PointSet requires at least one dimension");
        PointSet {
            dims,
            coords: Vec::new(),
        }
    }

    /// An empty point set with capacity for `n` points.
    pub fn with_capacity(dims: usize, n: usize) -> Self {
        let mut p = PointSet::new(dims);
        p.coords.reserve(n * dims);
        p
    }

    /// Build directly from column slices (one slice per dimension, equal
    /// lengths) — the shape extents hand the engine.
    pub fn from_columns(cols: &[&[f64]]) -> Self {
        assert!(!cols.is_empty());
        let n = cols[0].len();
        for c in cols {
            assert_eq!(c.len(), n, "column length mismatch");
        }
        let dims = cols.len();
        let mut coords = Vec::with_capacity(n * dims);
        for i in 0..n {
            for c in cols {
                coords.push(c[i]);
            }
        }
        PointSet { dims, coords }
    }

    /// Append one point; returns its row index.
    #[inline]
    pub fn push(&mut self, p: &[f64]) -> u32 {
        assert_eq!(p.len(), self.dims, "point dimensionality mismatch");
        let id = self.len() as u32;
        self.coords.extend_from_slice(p);
        id
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len().checked_div(self.dims).unwrap_or(0)
    }

    /// Whether there are no points.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Coordinates of point `i`.
    #[inline]
    pub fn point(&self, i: u32) -> &[f64] {
        let i = i as usize;
        &self.coords[i * self.dims..(i + 1) * self.dims]
    }

    /// One coordinate of point `i`.
    #[inline]
    pub fn coord(&self, i: u32, dim: usize) -> f64 {
        self.coords[i as usize * self.dims + dim]
    }

    /// The raw row-major buffer.
    pub fn raw(&self) -> &[f64] {
        &self.coords
    }

    /// Whether point `i` lies inside the inclusive box `[lo, hi]`.
    #[inline]
    pub fn contains(&self, i: u32, lo: &[f64], hi: &[f64]) -> bool {
        let p = self.point(i);
        for d in 0..self.dims {
            if p[d] < lo[d] || p[d] > hi[d] {
                return false;
            }
        }
        true
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.coords.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut p = PointSet::new(3);
        let a = p.push(&[1.0, 2.0, 3.0]);
        let b = p.push(&[4.0, 5.0, 6.0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.point(a), &[1.0, 2.0, 3.0]);
        assert_eq!(p.coord(b, 1), 5.0);
    }

    #[test]
    fn from_columns_interleaves() {
        let xs = [1.0, 2.0];
        let ys = [10.0, 20.0];
        let p = PointSet::from_columns(&[&xs, &ys]);
        assert_eq!(p.point(0), &[1.0, 10.0]);
        assert_eq!(p.point(1), &[2.0, 20.0]);
    }

    #[test]
    fn contains_is_inclusive() {
        let mut p = PointSet::new(2);
        p.push(&[1.0, 1.0]);
        assert!(p.contains(0, &[1.0, 1.0], &[1.0, 1.0]));
        assert!(!p.contains(0, &[1.1, 0.0], &[2.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dims_panics() {
        let mut p = PointSet::new(2);
        p.push(&[1.0]);
    }
}
