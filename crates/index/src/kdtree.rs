//! Static k-d tree with median splits and leaf buckets.
//!
//! O(n log n) build, O(n^(1−1/d) + k) worst-case range query, exactly
//! O(n) space — the space-frugal alternative to the range tree that the
//! index experiment (E4) contrasts against the paper's
//! Θ(n·log^(d−1) n) structure.

use crate::points::PointSet;
use crate::{IndexKind, SpatialIndex};

const LEAF_SIZE: usize = 16;

enum Node {
    Leaf {
        /// Range into `KdTree::ids`.
        start: u32,
        end: u32,
    },
    Inner {
        dim: u8,
        split: f64,
        /// Index of the left child in `KdTree::nodes`; right = left + 1
        /// is *not* guaranteed, so both are stored.
        left: u32,
        right: u32,
    },
}

/// A static median-split k-d tree over a [`PointSet`].
pub struct KdTree {
    points: PointSet,
    nodes: Vec<Node>,
    ids: Vec<u32>,
    root: u32,
}

impl KdTree {
    /// Build over `points`.
    pub fn build(points: &PointSet) -> Self {
        let n = points.len();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::with_capacity(2 * (n / LEAF_SIZE + 1));
        let points = points.clone();
        let root = if n == 0 {
            nodes.push(Node::Leaf { start: 0, end: 0 });
            0
        } else {
            build_rec(&points, &mut nodes, &mut ids, 0, n, 0)
        };
        KdTree {
            points,
            nodes,
            ids,
            root,
        }
    }

    fn query_rec(&self, node: u32, lo: &[f64], hi: &[f64], out: &mut Vec<u32>) {
        match &self.nodes[node as usize] {
            Node::Leaf { start, end } => {
                for &i in &self.ids[*start as usize..*end as usize] {
                    if self.points.contains(i, lo, hi) {
                        out.push(i);
                    }
                }
            }
            Node::Inner {
                dim,
                split,
                left,
                right,
            } => {
                let d = *dim as usize;
                if lo[d] <= *split {
                    self.query_rec(*left, lo, hi, out);
                }
                if hi[d] >= *split {
                    self.query_rec(*right, lo, hi, out);
                }
            }
        }
    }
}

fn build_rec(
    points: &PointSet,
    nodes: &mut Vec<Node>,
    ids: &mut Vec<u32>,
    start: usize,
    end: usize,
    depth: usize,
) -> u32 {
    let len = end - start;
    if len <= LEAF_SIZE {
        nodes.push(Node::Leaf {
            start: start as u32,
            end: end as u32,
        });
        return (nodes.len() - 1) as u32;
    }
    let dim = depth % points.dims();
    let mid = start + len / 2;
    ids[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
        points
            .coord(a, dim)
            .partial_cmp(&points.coord(b, dim))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let split = points.coord(ids[mid], dim);
    // Reserve our slot before recursing so child indexes are stable.
    nodes.push(Node::Leaf { start: 0, end: 0 });
    let me = (nodes.len() - 1) as u32;
    let left = build_rec(points, nodes, ids, start, mid, depth + 1);
    let right = build_rec(points, nodes, ids, mid, end, depth + 1);
    nodes[me as usize] = Node::Inner {
        dim: dim as u8,
        split,
        left,
        right,
    };
    me
}

impl SpatialIndex for KdTree {
    fn dims(&self) -> usize {
        self.points.dims()
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn query(&self, lo: &[f64], hi: &[f64], out: &mut Vec<u32>) {
        if self.points.is_empty() {
            return;
        }
        self.query_rec(self.root, lo, hi, out);
    }

    fn memory_bytes(&self) -> usize {
        self.points.memory_bytes()
            + self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.ids.capacity() * 4
    }

    fn kind(&self) -> IndexKind {
        IndexKind::KdTree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanIndex;

    fn pseudo_random_points(n: usize, dims: usize, seed: u64) -> PointSet {
        // Tiny LCG so the test needs no external RNG.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0
        };
        let mut p = PointSet::new(dims);
        for _ in 0..n {
            let coords: Vec<f64> = (0..dims).map(|_| next()).collect();
            p.push(&coords);
        }
        p
    }

    #[test]
    fn matches_scan_on_random_points() {
        for dims in 1..=3 {
            let p = pseudo_random_points(500, dims, 42 + dims as u64);
            let kd = KdTree::build(&p);
            let scan = ScanIndex::build(&p);
            let lo: Vec<f64> = vec![20.0; dims];
            let hi: Vec<f64> = vec![60.0; dims];
            let mut a = Vec::new();
            let mut b = Vec::new();
            kd.query(&lo, &hi, &mut a);
            scan.query(&lo, &hi, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "dims={dims}");
        }
    }

    #[test]
    fn handles_small_inputs() {
        for n in 0..=3 {
            let p = pseudo_random_points(n, 2, 7);
            let kd = KdTree::build(&p);
            let mut out = Vec::new();
            kd.query(&[0.0, 0.0], &[100.0, 100.0], &mut out);
            assert_eq!(out.len(), n);
        }
    }

    #[test]
    fn duplicate_coordinates() {
        let mut p = PointSet::new(2);
        for _ in 0..100 {
            p.push(&[5.0, 5.0]);
        }
        let kd = KdTree::build(&p);
        let mut out = Vec::new();
        kd.query(&[5.0, 5.0], &[5.0, 5.0], &mut out);
        assert_eq!(out.len(), 100);
    }
}
