//! The multi-dimensional **orthogonal range tree** of §4.2.
//!
//! The paper: *"SGL makes extensive use of large multi-dimensional
//! orthogonal range tree indices. Each of these trees takes
//! Θ(n·log^(d−1) n) space"* (citing de Berg et al., the paper's ref 3).
//!
//! Layered construction: dimension `k` is indexed by a balanced binary
//! tree (here: an implicit heap-layout segment tree over the points
//! sorted by coordinate `k`); every tree node owns an *associated
//! structure* — a range tree over the node's subtree on dimensions
//! `k+1..d`. The last dimension is a plain sorted array. A box query
//! decomposes the first-dimension interval into O(log n) canonical nodes
//! and recurses into their associated structures, giving
//! O(log^d n + k) query time and the advertised super-linear space —
//! which experiment E4 measures directly.

use crate::points::PointSet;
use crate::{IndexKind, SpatialIndex};

enum Level {
    /// Final dimension: ids sorted by coordinate.
    Last { keys: Vec<f64>, ids: Vec<u32> },
    /// One indexed dimension with associated structures per tree node.
    Inner {
        /// Coordinate of this dimension, sorted ascending (leaf order).
        keys: Vec<f64>,
        /// Heap-layout segment tree over the `keys` order; entry 0 unused,
        /// root at 1, node `v` has children `2v`/`2v+1`. Leaves are the
        /// first power of two ≥ `keys.len()`; nodes whose range lies
        /// entirely past `keys.len()` are `None`.
        assoc: Vec<Option<Box<Level>>>,
        /// Number of leaf slots (power of two).
        width: usize,
    },
}

/// The layered orthogonal range tree.
pub struct RangeTree {
    dims: usize,
    len: usize,
    root: Option<Level>,
}

impl RangeTree {
    /// Build over `points` (any dimensionality ≥ 1).
    pub fn build(points: &PointSet) -> Self {
        let n = points.len();
        let dims = points.dims();
        let root = if n == 0 {
            None
        } else {
            let ids: Vec<u32> = (0..n as u32).collect();
            Some(build_level(points, ids, 0))
        };
        RangeTree { dims, len: n, root }
    }

    /// Count of tree *entries* (point copies across all levels) — the
    /// quantity that grows as n·log^(d−1) n. Used by experiment E4.
    pub fn entry_count(&self) -> usize {
        fn count(level: &Level) -> usize {
            match level {
                Level::Last { ids, .. } => ids.len(),
                Level::Inner { keys, assoc, .. } => {
                    keys.len() + assoc.iter().flatten().map(|l| count(l)).sum::<usize>()
                }
            }
        }
        self.root.as_ref().map_or(0, count)
    }
}

fn sort_ids_by_dim(points: &PointSet, ids: &mut [u32], dim: usize) {
    ids.sort_unstable_by(|&a, &b| {
        points
            .coord(a, dim)
            .partial_cmp(&points.coord(b, dim))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

fn build_level(points: &PointSet, mut ids: Vec<u32>, dim: usize) -> Level {
    sort_ids_by_dim(points, &mut ids, dim);
    let keys: Vec<f64> = ids.iter().map(|&i| points.coord(i, dim)).collect();
    if dim + 1 == points.dims() {
        return Level::Last { keys, ids };
    }
    let n = ids.len();
    let width = n.next_power_of_two();
    let mut assoc: Vec<Option<Box<Level>>> = Vec::new();
    assoc.resize_with(2 * width, || None);
    build_assoc(points, &ids, dim, 1, 0, width, &mut assoc);
    Level::Inner { keys, assoc, width }
}

fn build_assoc(
    points: &PointSet,
    sorted_ids: &[u32],
    dim: usize,
    node: usize,
    lo: usize,
    hi: usize,
    assoc: &mut Vec<Option<Box<Level>>>,
) {
    let clip_hi = hi.min(sorted_ids.len());
    if lo >= clip_hi {
        return;
    }
    let slice = sorted_ids[lo..clip_hi].to_vec();
    assoc[node] = Some(Box::new(build_level(points, slice, dim + 1)));
    if hi - lo > 1 {
        let mid = (lo + hi) / 2;
        build_assoc(points, sorted_ids, dim, 2 * node, lo, mid, assoc);
        build_assoc(points, sorted_ids, dim, 2 * node + 1, mid, hi, assoc);
    }
}

fn query_level(level: &Level, dim: usize, lo: &[f64], hi: &[f64], out: &mut Vec<u32>) {
    match level {
        Level::Last { keys, ids } => {
            let i0 = keys.partition_point(|&k| k < lo[dim]);
            let i1 = keys.partition_point(|&k| k <= hi[dim]);
            if i0 < i1 {
                out.extend_from_slice(&ids[i0..i1]);
            }
        }
        Level::Inner { keys, assoc, width } => {
            let i0 = keys.partition_point(|&k| k < lo[dim]);
            let i1 = keys.partition_point(|&k| k <= hi[dim]);
            if i0 >= i1 {
                return;
            }
            decompose(assoc, dim, lo, hi, 1, 0, *width, i0, i1, out);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn decompose(
    assoc: &[Option<Box<Level>>],
    dim: usize,
    lo: &[f64],
    hi: &[f64],
    node: usize,
    node_lo: usize,
    node_hi: usize,
    q_lo: usize,
    q_hi: usize,
    out: &mut Vec<u32>,
) {
    if q_hi <= node_lo || node_hi <= q_lo {
        return;
    }
    if q_lo <= node_lo && node_hi <= q_hi {
        if let Some(level) = &assoc[node] {
            query_level(level, dim + 1, lo, hi, out);
        }
        return;
    }
    let mid = (node_lo + node_hi) / 2;
    decompose(assoc, dim, lo, hi, 2 * node, node_lo, mid, q_lo, q_hi, out);
    decompose(
        assoc,
        dim,
        lo,
        hi,
        2 * node + 1,
        mid,
        node_hi,
        q_lo,
        q_hi,
        out,
    );
}

fn level_bytes(level: &Level) -> usize {
    match level {
        Level::Last { keys, ids } => keys.capacity() * 8 + ids.capacity() * 4,
        Level::Inner { keys, assoc, .. } => {
            keys.capacity() * 8
                + assoc.capacity() * std::mem::size_of::<Option<Box<Level>>>()
                + assoc
                    .iter()
                    .flatten()
                    .map(|l| std::mem::size_of::<Level>() + level_bytes(l))
                    .sum::<usize>()
        }
    }
}

impl SpatialIndex for RangeTree {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len(&self) -> usize {
        self.len
    }

    fn query(&self, lo: &[f64], hi: &[f64], out: &mut Vec<u32>) {
        if let Some(root) = &self.root {
            query_level(root, 0, lo, hi, out);
        }
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<RangeTree>() + self.root.as_ref().map_or(0, level_bytes)
    }

    fn kind(&self) -> IndexKind {
        IndexKind::RangeTree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanIndex;

    fn pseudo_random_points(n: usize, dims: usize, seed: u64) -> PointSet {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0
        };
        let mut p = PointSet::new(dims);
        for _ in 0..n {
            let coords: Vec<f64> = (0..dims).map(|_| next()).collect();
            p.push(&coords);
        }
        p
    }

    #[test]
    fn matches_scan_on_random_points() {
        for dims in 1..=3 {
            let p = pseudo_random_points(400, dims, 11 * dims as u64);
            let rt = RangeTree::build(&p);
            let scan = ScanIndex::build(&p);
            for (a, b) in [(10.0, 30.0), (0.0, 100.0), (49.9, 50.1), (90.0, 10.0)] {
                let lo = vec![a; dims];
                let hi = vec![b; dims];
                let mut x = Vec::new();
                let mut y = Vec::new();
                rt.query(&lo, &hi, &mut x);
                scan.query(&lo, &hi, &mut y);
                x.sort_unstable();
                y.sort_unstable();
                assert_eq!(x, y, "dims={dims} box=({a},{b})");
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let p = PointSet::new(2);
        let rt = RangeTree::build(&p);
        let mut out = Vec::new();
        rt.query(&[0.0, 0.0], &[1.0, 1.0], &mut out);
        assert!(out.is_empty());

        let mut p = PointSet::new(2);
        p.push(&[5.0, 5.0]);
        let rt = RangeTree::build(&p);
        rt.query(&[5.0, 5.0], &[5.0, 5.0], &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn duplicate_points_all_reported() {
        let mut p = PointSet::new(2);
        for _ in 0..50 {
            p.push(&[1.0, 2.0]);
        }
        let rt = RangeTree::build(&p);
        let mut out = Vec::new();
        rt.query(&[1.0, 2.0], &[1.0, 2.0], &mut out);
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn entry_count_grows_superlinearly_with_dims() {
        // For fixed n, a 2-D tree stores ~log n copies of each point in
        // the first-level associated structures; 1-D stores each once.
        let n = 1024;
        let p1 = pseudo_random_points(n, 1, 3);
        let p2 = pseudo_random_points(n, 2, 3);
        let e1 = RangeTree::build(&p1).entry_count();
        let e2 = RangeTree::build(&p2).entry_count();
        assert_eq!(e1, n);
        // n (first level) + sum over tree nodes ≈ n + n*(log2(n)+1)
        assert!(e2 > n * 10, "expected ~n log n entries, got {e2}");
    }

    #[test]
    fn memory_reflects_entries() {
        let p = pseudo_random_points(2000, 2, 9);
        let rt = RangeTree::build(&p);
        // At least 12 bytes per entry (f64 key + u32 id).
        assert!(rt.memory_bytes() >= rt.entry_count() * 12);
    }
}
