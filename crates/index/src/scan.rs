//! Linear-scan "index": the no-index baseline / NL-join access path.

use crate::points::PointSet;
use crate::{IndexKind, SpatialIndex};

/// Keeps the point buffer and filters it on every query. Zero build cost,
/// O(n) probe cost — the access path an object-at-a-time engine is stuck
/// with, and the right choice for tiny extents or very unselective boxes.
pub struct ScanIndex {
    points: PointSet,
}

impl ScanIndex {
    /// Build by cloning the point buffer.
    pub fn build(points: &PointSet) -> Self {
        ScanIndex {
            points: points.clone(),
        }
    }
}

impl SpatialIndex for ScanIndex {
    fn dims(&self) -> usize {
        self.points.dims()
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn query(&self, lo: &[f64], hi: &[f64], out: &mut Vec<u32>) {
        debug_assert_eq!(lo.len(), self.dims());
        let n = self.points.len() as u32;
        for i in 0..n {
            if self.points.contains(i, lo, hi) {
                out.push(i);
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.points.memory_bytes()
    }

    fn kind(&self) -> IndexKind {
        IndexKind::Scan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_filters_inclusively() {
        let mut p = PointSet::new(1);
        for x in [0.0, 1.0, 2.0, 3.0] {
            p.push(&[x]);
        }
        let idx = ScanIndex::build(&p);
        let mut out = Vec::new();
        idx.query(&[1.0], &[2.0], &mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn empty_pointset() {
        let p = PointSet::new(2);
        let idx = ScanIndex::build(&p);
        let mut out = Vec::new();
        idx.query(&[0.0, 0.0], &[1.0, 1.0], &mut out);
        assert!(out.is_empty());
        assert!(idx.is_empty());
    }
}
