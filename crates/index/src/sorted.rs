//! 1-D sorted-array index: binary search + contiguous range report.

use crate::points::PointSet;
use crate::{IndexKind, SpatialIndex};

/// Points sorted by their single coordinate. O(n log n) build,
/// O(log n + k) query, exactly n entries of space — the degenerate
/// (d = 1) case of the orthogonal range tree.
pub struct SortedIndex {
    keys: Vec<f64>,
    ids: Vec<u32>,
}

impl SortedIndex {
    /// Build from a 1-D point set.
    pub fn build(points: &PointSet) -> Self {
        assert_eq!(points.dims(), 1, "SortedIndex requires 1-D points");
        let n = points.len();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.sort_unstable_by(|&a, &b| {
            points
                .coord(a, 0)
                .partial_cmp(&points.coord(b, 0))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let keys = ids.iter().map(|&i| points.coord(i, 0)).collect();
        SortedIndex { keys, ids }
    }

    /// The index range `[i0, i1)` of keys within `[lo, hi]`.
    #[inline]
    pub fn key_range(&self, lo: f64, hi: f64) -> (usize, usize) {
        let i0 = self.keys.partition_point(|&k| k < lo);
        let i1 = self.keys.partition_point(|&k| k <= hi);
        (i0, i1)
    }
}

impl SpatialIndex for SortedIndex {
    fn dims(&self) -> usize {
        1
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn query(&self, lo: &[f64], hi: &[f64], out: &mut Vec<u32>) {
        let (i0, i1) = self.key_range(lo[0], hi[0]);
        out.extend_from_slice(&self.ids[i0..i1]);
    }

    fn memory_bytes(&self) -> usize {
        self.keys.capacity() * 8 + self.ids.capacity() * 4
    }

    fn kind(&self) -> IndexKind {
        IndexKind::Sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(xs: &[f64]) -> SortedIndex {
        let mut p = PointSet::new(1);
        for &x in xs {
            p.push(&[x]);
        }
        SortedIndex::build(&p)
    }

    #[test]
    fn range_reports_original_ids() {
        let idx = build(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        let mut out = Vec::new();
        idx.query(&[2.0], &[4.0], &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![2, 3, 4]); // values 3.0, 2.0, 4.0
    }

    #[test]
    fn duplicates_all_reported() {
        let idx = build(&[2.0, 2.0, 2.0]);
        let mut out = Vec::new();
        idx.query(&[2.0], &[2.0], &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn empty_range() {
        let idx = build(&[1.0, 10.0]);
        let mut out = Vec::new();
        idx.query(&[2.0], &[9.0], &mut out);
        assert!(out.is_empty());
    }
}
