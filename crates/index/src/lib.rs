#![forbid(unsafe_code)]
//! # sgl-index
//!
//! Spatial index library for the SGL engine, reproducing §4.2 of
//! *"From Declarative Languages to Declarative Processing in Computer
//! Games"* (CIDR 2009).
//!
//! The paper's engine "makes extensive use of large multi-dimensional
//! orthogonal range tree indices", each taking Θ(n·log^(d−1) n) space.
//! This crate implements that structure ([`range_tree::RangeTree`])
//! together with the baselines the optimizer chooses between:
//!
//! * [`scan::ScanIndex`] — no index, linear filter (the NL-join access path),
//! * [`sorted::SortedIndex`] — 1-D sorted array with binary search,
//! * [`grid::UniformGrid`] — uniform cell grid (the classic game-engine
//!   broadphase structure),
//! * [`kdtree::KdTree`] — static median-split k-d tree,
//! * [`range_tree::RangeTree`] — the paper's layered orthogonal range tree.
//!
//! [`intervals::IntervalSet`] re-targets the 2-D range tree at 1-D
//! interval *overlap* stabs (intervals as `(lo, hi)` points); `sgl-net`
//! uses it to route per-tick changesets to the client sessions whose
//! declared interest window overlaps what changed.
//!
//! All indexes answer inclusive axis-aligned box queries over a
//! [`PointSet`] and report *row indexes* (`u32`), which the engine maps
//! back to entities. Indexes are static: the paper observes that O(n)
//! attributes change every tick, so the engine rebuilds per tick and the
//! optimizer weighs build cost against probe cost ([`IndexKind`]).

pub mod grid;
pub mod intervals;
pub mod kdtree;
pub mod partitioned;
pub mod points;
pub mod range_tree;
pub mod scan;
pub mod sorted;

pub use grid::UniformGrid;
pub use intervals::IntervalSet;
pub use kdtree::KdTree;
pub use partitioned::PartitionedRangeTree;
pub use points::PointSet;
pub use range_tree::RangeTree;
pub use scan::ScanIndex;
pub use sorted::SortedIndex;

/// An inclusive axis-aligned box query over `dims()` dimensions.
///
/// Implementations append the row indexes of all points `p` with
/// `lo[k] <= p[k] <= hi[k]` for every dimension `k` to `out`, in
/// unspecified order.
pub trait SpatialIndex: Send + Sync {
    /// Dimensionality of the indexed points.
    fn dims(&self) -> usize;
    /// Number of indexed points.
    fn len(&self) -> usize;
    /// Whether the index holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Append all row ids inside the inclusive box `[lo, hi]` to `out`.
    fn query(&self, lo: &[f64], hi: &[f64], out: &mut Vec<u32>);
    /// Approximate heap footprint in bytes (the quantity the paper's
    /// Θ(n·log^(d−1) n) analysis is about).
    fn memory_bytes(&self) -> usize;
    /// Short name for plans and experiment output.
    fn kind(&self) -> IndexKind;
}

/// The access-path repertoire the adaptive optimizer (§4.1) picks from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Linear scan (no build cost, O(n) probes).
    Scan,
    /// 1-D sorted array.
    Sorted,
    /// Uniform grid.
    Grid,
    /// k-d tree.
    KdTree,
    /// Orthogonal range tree.
    RangeTree,
}

impl IndexKind {
    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Scan => "scan",
            IndexKind::Sorted => "sorted",
            IndexKind::Grid => "grid",
            IndexKind::KdTree => "kdtree",
            IndexKind::RangeTree => "rangetree",
        }
    }

    /// All kinds applicable to `dims` dimensions.
    pub fn applicable(dims: usize) -> Vec<IndexKind> {
        let mut v = vec![IndexKind::Scan];
        if dims == 1 {
            v.push(IndexKind::Sorted);
        }
        v.push(IndexKind::Grid);
        v.push(IndexKind::KdTree);
        v.push(IndexKind::RangeTree);
        v
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Build an index of the requested kind over `points`.
///
/// `Sorted` falls back to `RangeTree` (identical query semantics) when
/// `points.dims() > 1`.
pub fn build_index(kind: IndexKind, points: &PointSet) -> Box<dyn SpatialIndex> {
    match kind {
        IndexKind::Scan => Box::new(ScanIndex::build(points)),
        IndexKind::Sorted if points.dims() == 1 => Box::new(SortedIndex::build(points)),
        IndexKind::Sorted => Box::new(RangeTree::build(points)),
        IndexKind::Grid => Box::new(UniformGrid::build(points)),
        IndexKind::KdTree => Box::new(KdTree::build(points)),
        IndexKind::RangeTree => Box::new(RangeTree::build(points)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts_2d() -> PointSet {
        let mut p = PointSet::new(2);
        for i in 0..20 {
            p.push(&[(i % 5) as f64, (i / 5) as f64]);
        }
        p
    }

    #[test]
    fn build_index_all_kinds_agree_with_scan() {
        let p = pts_2d();
        let lo = [1.0, 1.0];
        let hi = [3.0, 2.0];
        let mut expect = Vec::new();
        build_index(IndexKind::Scan, &p).query(&lo, &hi, &mut expect);
        expect.sort_unstable();
        for kind in [IndexKind::Grid, IndexKind::KdTree, IndexKind::RangeTree] {
            let idx = build_index(kind, &p);
            let mut got = Vec::new();
            idx.query(&lo, &hi, &mut got);
            got.sort_unstable();
            assert_eq!(got, expect, "kind {kind}");
        }
    }

    #[test]
    fn applicable_kinds_by_dim() {
        assert!(IndexKind::applicable(1).contains(&IndexKind::Sorted));
        assert!(!IndexKind::applicable(2).contains(&IndexKind::Sorted));
        assert!(IndexKind::applicable(3).contains(&IndexKind::RangeTree));
    }

    #[test]
    fn sorted_falls_back_for_multidim() {
        let p = pts_2d();
        let idx = build_index(IndexKind::Sorted, &p);
        assert_eq!(idx.kind(), IndexKind::RangeTree);
    }
}
