//! Partitioned range trees — the paper's shared-nothing question.
//!
//! §4.2: *"a tree with 100,000 entries of 16 bytes each takes about 2 GB
//! to store. As the dimensionality and number of characters increase,
//! this will quickly exhaust the main memory of a single machine. Thus an
//! interesting research question is to consider techniques to partition
//! indices across multiple nodes."*
//!
//! This module prototypes the obvious technique: spatial range
//! partitioning on the first dimension. Points are split into `k`
//! contiguous shards (balanced by count); each shard builds its own
//! range tree ("node-local index"); a box query fans out only to the
//! shards whose key range intersects the box. The per-shard memory
//! figures quantify how partitioning divides the Θ(n·log^(d−1) n) space —
//! and, because log is applied to a smaller n, the *total* memory also
//! drops. Experiment E11 prints the table.

use crate::points::PointSet;
use crate::range_tree::RangeTree;
use crate::{IndexKind, SpatialIndex};

/// A range tree sharded over `k` simulated shared-nothing nodes.
pub struct PartitionedRangeTree {
    /// Shard split keys: shard `i` covers first-dim keys
    /// `[splits[i], splits[i+1])` (±∞ at the ends).
    splits: Vec<f64>,
    shards: Vec<Shard>,
    dims: usize,
    len: usize,
}

struct Shard {
    /// Node-local tree over the shard's points.
    tree: RangeTree,
    /// Mapping from shard-local row ids back to global row ids.
    global_ids: Vec<u32>,
}

impl PartitionedRangeTree {
    /// Build over `points`, sharded into `k` nodes by the first
    /// dimension (balanced by point count).
    pub fn build(points: &PointSet, k: usize) -> Self {
        let n = points.len();
        let dims = points.dims();
        let k = k.max(1).min(n.max(1));

        // Sort global ids by the first dimension and cut into k runs.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            points
                .coord(a, 0)
                .partial_cmp(&points.coord(b, 0))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut shards = Vec::with_capacity(k);
        let mut splits = Vec::with_capacity(k.saturating_sub(1));
        let chunk = n.div_ceil(k);
        for s in 0..k {
            let lo = s * chunk;
            let hi = ((s + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let global_ids: Vec<u32> = order[lo..hi].to_vec();
            if s > 0 {
                splits.push(points.coord(order[lo], 0));
            }
            let mut local = PointSet::with_capacity(dims, global_ids.len());
            for &g in &global_ids {
                local.push(points.point(g));
            }
            shards.push(Shard {
                tree: RangeTree::build(&local),
                global_ids,
            });
        }
        PartitionedRangeTree {
            splits,
            shards,
            dims,
            len: n,
        }
    }

    /// Number of shards ("nodes").
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard (points, bytes) — the quantity a cluster deployment
    /// provisions per node.
    pub fn shard_stats(&self) -> Vec<(usize, usize)> {
        self.shards
            .iter()
            .map(|s| (s.tree.len(), s.tree.memory_bytes()))
            .collect()
    }

    /// Largest shard footprint in bytes.
    pub fn max_shard_bytes(&self) -> usize {
        self.shard_stats().iter().map(|s| s.1).max().unwrap_or(0)
    }

    /// How many shards a box query touches (fan-out).
    pub fn fanout(&self, lo0: f64, hi0: f64) -> usize {
        self.shard_range(lo0, hi0).len()
    }

    fn shard_range(&self, lo0: f64, hi0: f64) -> std::ops::Range<usize> {
        // First shard whose upper split exceeds lo0 … last shard whose
        // lower split is ≤ hi0.
        let start = self.splits.partition_point(|&s| s <= lo0);
        let end = self.splits.partition_point(|&s| s <= hi0) + 1;
        start..end.min(self.shards.len())
    }
}

impl SpatialIndex for PartitionedRangeTree {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len(&self) -> usize {
        self.len
    }

    fn query(&self, lo: &[f64], hi: &[f64], out: &mut Vec<u32>) {
        if self.shards.is_empty() {
            return;
        }
        let mut local = Vec::new();
        for si in self.shard_range(lo[0], hi[0]) {
            let shard = &self.shards[si];
            local.clear();
            shard.tree.query(lo, hi, &mut local);
            out.extend(local.iter().map(|&l| shard.global_ids[l as usize]));
        }
    }

    fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.tree.memory_bytes() + s.global_ids.capacity() * 4)
            .sum()
    }

    fn kind(&self) -> IndexKind {
        IndexKind::RangeTree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanIndex;

    fn random_points(n: usize, seed: u64) -> PointSet {
        let mut pts = PointSet::new(2);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 100.0
        };
        for _ in 0..n {
            let x = next();
            let y = next();
            pts.push(&[x, y]);
        }
        pts
    }

    #[test]
    fn partitioned_matches_scan() {
        let pts = random_points(500, 3);
        let scan = ScanIndex::build(&pts);
        for k in [1usize, 2, 4, 7] {
            let part = PartitionedRangeTree::build(&pts, k);
            assert_eq!(part.shard_count(), k);
            for (lo, hi) in [([10.0, 10.0], [40.0, 60.0]), ([0.0, 0.0], [100.0, 100.0])] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                part.query(&lo, &hi, &mut a);
                scan.query(&lo, &hi, &mut b);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "k={k} box={lo:?}..{hi:?}");
            }
        }
    }

    #[test]
    fn sharding_divides_memory() {
        let pts = random_points(4096, 9);
        let whole = RangeTree::build(&pts);
        let part = PartitionedRangeTree::build(&pts, 8);
        // Each node holds far less than the monolithic tree…
        assert!(part.max_shard_bytes() * 4 < whole.memory_bytes());
        // …and the total also shrinks (smaller log factor per shard).
        assert!(part.memory_bytes() < whole.memory_bytes());
    }

    #[test]
    fn selective_queries_have_small_fanout() {
        let pts = random_points(4096, 1);
        let part = PartitionedRangeTree::build(&pts, 8);
        assert!(part.fanout(10.0, 12.0) <= 2);
        assert_eq!(part.fanout(f64::NEG_INFINITY, f64::INFINITY), 8);
    }

    #[test]
    fn degenerate_shard_counts() {
        let pts = random_points(10, 4);
        let one = PartitionedRangeTree::build(&pts, 1);
        assert_eq!(one.shard_count(), 1);
        let many = PartitionedRangeTree::build(&pts, 50);
        assert!(many.shard_count() <= 10);
        let mut out = Vec::new();
        many.query(&[0.0, 0.0], &[100.0, 100.0], &mut out);
        assert_eq!(out.len(), 10);
    }
}
