//! Uniform grid index — the classic game-engine broadphase.
//!
//! Points are bucketed into uniform cells (CSR layout: one offsets array,
//! one ids array — cache-friendly, no per-cell Vec). Queries enumerate the
//! overlapping cell block and filter candidates exactly.

use crate::points::PointSet;
use crate::{IndexKind, SpatialIndex};

/// Uniform grid over the bounding box of the build-time points, with
/// roughly one point per cell on average (cells-per-axis chosen as
/// ⌈n^(1/d)⌉, clamped).
pub struct UniformGrid {
    points: PointSet,
    lo: Vec<f64>,
    cell_size: Vec<f64>,
    cells_per_axis: Vec<usize>,
    /// CSR offsets: `cell_count + 1` entries.
    offsets: Vec<u32>,
    /// Row ids grouped by cell.
    ids: Vec<u32>,
}

impl UniformGrid {
    /// Build over `points` with automatic cell sizing.
    pub fn build(points: &PointSet) -> Self {
        let dims = points.dims();
        let n = points.len();
        let per_axis = if n == 0 {
            1
        } else {
            ((n as f64).powf(1.0 / dims as f64).ceil() as usize).clamp(1, 1 << 12)
        };
        Self::build_with_cells(points, per_axis)
    }

    /// Build with an explicit cells-per-axis count (exposed for the index
    /// ablation benchmark).
    pub fn build_with_cells(points: &PointSet, per_axis: usize) -> Self {
        let dims = points.dims();
        let n = points.len();
        let per_axis = per_axis.max(1);
        let mut lo = vec![f64::INFINITY; dims];
        let mut hi = vec![f64::NEG_INFINITY; dims];
        for i in 0..n as u32 {
            let p = points.point(i);
            for d in 0..dims {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        if n == 0 {
            lo.iter_mut().for_each(|v| *v = 0.0);
            hi.iter_mut().for_each(|v| *v = 1.0);
        }
        let cells_per_axis = vec![per_axis; dims];
        let cell_size: Vec<f64> = (0..dims)
            .map(|d| {
                let w = (hi[d] - lo[d]).max(f64::MIN_POSITIVE);
                w / per_axis as f64
            })
            .collect();
        let cell_count: usize = cells_per_axis.iter().product();

        // Counting sort into CSR.
        let mut counts = vec![0u32; cell_count + 1];
        let grid = UniformGridShape {
            lo: &lo,
            cell_size: &cell_size,
            cells_per_axis: &cells_per_axis,
        };
        for i in 0..n as u32 {
            let c = grid.cell_of(points.point(i));
            counts[c + 1] += 1;
        }
        for c in 0..cell_count {
            counts[c + 1] += counts[c];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut ids = vec![0u32; n];
        for i in 0..n as u32 {
            let c = grid.cell_of(points.point(i));
            ids[cursor[c] as usize] = i;
            cursor[c] += 1;
        }

        UniformGrid {
            points: points.clone(),
            lo,
            cell_size,
            cells_per_axis,
            offsets,
            ids,
        }
    }

    #[inline]
    fn shape(&self) -> UniformGridShape<'_> {
        UniformGridShape {
            lo: &self.lo,
            cell_size: &self.cell_size,
            cells_per_axis: &self.cells_per_axis,
        }
    }

    /// Cells per axis (uniform across axes).
    pub fn cells_per_axis(&self) -> usize {
        self.cells_per_axis[0]
    }
}

struct UniformGridShape<'a> {
    lo: &'a [f64],
    cell_size: &'a [f64],
    cells_per_axis: &'a [usize],
}

impl UniformGridShape<'_> {
    /// Clamped per-axis cell coordinate.
    #[inline]
    fn axis_cell(&self, d: usize, v: f64) -> usize {
        let c = ((v - self.lo[d]) / self.cell_size[d]).floor();
        let max = self.cells_per_axis[d] - 1;
        if c.is_nan() || c < 0.0 {
            0
        } else {
            (c as usize).min(max)
        }
    }

    /// Flat cell index of a point.
    #[inline]
    fn cell_of(&self, p: &[f64]) -> usize {
        let mut idx = 0;
        for (d, &v) in p.iter().enumerate() {
            idx = idx * self.cells_per_axis[d] + self.axis_cell(d, v);
        }
        idx
    }
}

impl SpatialIndex for UniformGrid {
    fn dims(&self) -> usize {
        self.points.dims()
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn query(&self, lo: &[f64], hi: &[f64], out: &mut Vec<u32>) {
        if self.points.is_empty() {
            return;
        }
        let dims = self.dims();
        let shape = self.shape();
        let c_lo: Vec<usize> = (0..dims).map(|d| shape.axis_cell(d, lo[d])).collect();
        let c_hi: Vec<usize> = (0..dims).map(|d| shape.axis_cell(d, hi[d])).collect();

        // Enumerate the d-dimensional block of cells [c_lo, c_hi].
        let mut cursor = c_lo.clone();
        loop {
            let mut flat = 0;
            for (d, &c) in cursor.iter().enumerate() {
                flat = flat * self.cells_per_axis[d] + c;
            }
            let (s, e) = (self.offsets[flat] as usize, self.offsets[flat + 1] as usize);
            for &i in &self.ids[s..e] {
                if self.points.contains(i, lo, hi) {
                    out.push(i);
                }
            }
            // Odometer increment over the cell block.
            let mut d = dims;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                if cursor[d] < c_hi[d] {
                    cursor[d] += 1;
                    for (dd, c) in cursor.iter_mut().enumerate().skip(d + 1) {
                        *c = c_lo[dd];
                    }
                    break;
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.points.memory_bytes() + self.offsets.capacity() * 4 + self.ids.capacity() * 4
    }

    fn kind(&self) -> IndexKind {
        IndexKind::Grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_3x3() -> (PointSet, UniformGrid) {
        let mut p = PointSet::new(2);
        for y in 0..10 {
            for x in 0..10 {
                p.push(&[x as f64, y as f64]);
            }
        }
        let g = UniformGrid::build(&p);
        (p, g)
    }

    #[test]
    fn grid_matches_scan() {
        let (p, g) = grid_3x3();
        let scan = crate::scan::ScanIndex::build(&p);
        for (lo, hi) in [
            ([2.0, 3.0], [5.0, 7.0]),
            ([0.0, 0.0], [9.0, 9.0]),
            ([4.5, 4.5], [4.6, 4.6]),
            ([-5.0, -5.0], [-1.0, -1.0]),
        ] {
            let mut a = Vec::new();
            let mut b = Vec::new();
            g.query(&lo, &hi, &mut a);
            scan.query(&lo, &hi, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "box {lo:?}..{hi:?}");
        }
    }

    #[test]
    fn all_points_in_one_cell() {
        // Degenerate: identical points must all land in a valid cell.
        let mut p = PointSet::new(2);
        for _ in 0..5 {
            p.push(&[3.0, 3.0]);
        }
        let g = UniformGrid::build(&p);
        let mut out = Vec::new();
        g.query(&[3.0, 3.0], &[3.0, 3.0], &mut out);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn one_dimensional_grid() {
        let mut p = PointSet::new(1);
        for i in 0..100 {
            p.push(&[i as f64]);
        }
        let g = UniformGrid::build(&p);
        let mut out = Vec::new();
        g.query(&[10.0], &[19.0], &mut out);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn three_dimensional_grid() {
        let mut p = PointSet::new(3);
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    p.push(&[i as f64, j as f64, k as f64]);
                }
            }
        }
        let g = UniformGrid::build(&p);
        let mut out = Vec::new();
        g.query(&[1.0, 1.0, 1.0], &[2.0, 2.0, 2.0], &mut out);
        assert_eq!(out.len(), 8);
    }
}
