#![forbid(unsafe_code)]
//! # sgl-interp
//!
//! The **object-at-a-time** script interpreter: the baseline execution
//! model the paper's declarative processing replaces.
//!
//! "Game developers program at the object level and design behavior for
//! each individual object in the game" (§1) — a conventional engine
//! therefore walks each NPC's script AST once per tick. This crate does
//! exactly that (tree-walking evaluation, accum-loops as nested loops
//! over the extent) while plugging into the same
//! [`EffectPhase`](sgl_engine::EffectPhase) slot as the compiled
//! executor, so the two models share the ⊕/update/reactive machinery and
//! differ *only* in how the query+effect phase runs — the comparison the
//! paper's headline claim is about (experiments F2/E1).
//!
//! Semantics match the compiled path exactly: same hidden `__pc_*`
//! program-counter values for `waitNextTick` (wait ids are assigned in
//! the same DFS order as the compiler's segmentation), same transaction
//! intents, same ⊕ combination.

mod env;
mod exec;

pub use exec::Interpreter;
