//! Tree-walking, per-NPC script execution.

use std::sync::Arc;

use sgl_ast::{AccumStmt, Block, EffectOp, Expr, LValue, ScriptDecl, Stmt};
use sgl_compiler::CompiledGame;
use sgl_engine::{
    effects::EffectStore,
    exec::EffectPhase,
    stats::TickStats,
    txn::{IntentWrite, TxnIntent},
    World,
};
use sgl_storage::{ClassId, EntityId, FxHashMap, Value};

use crate::env::{AccumFrame, Env, Local};

/// A path from the script root to a wait statement: alternating
/// statement index and (for `if`) branch selector.
type WaitPath = Vec<PathStep>;

#[derive(Debug, Clone, Copy, PartialEq)]
enum PathStep {
    /// Statement index within the current block.
    Stmt(usize),
    /// Branch of an `if` (0 = then, 1 = else).
    Branch(u8),
}

struct ScriptMeta {
    pc_col: Option<usize>,
    /// wait id → path to the wait statement.
    wait_paths: Vec<WaitPath>,
    /// wait span → wait id (mirrors the compiler's DFS numbering).
    wait_ids: FxHashMap<(u32, u32), usize>,
}

/// The object-at-a-time interpreter (implements
/// [`EffectPhase`]).
pub struct Interpreter {
    game: Arc<CompiledGame>,
    /// Per class, per script: resume metadata.
    meta: Vec<Vec<ScriptMeta>>,
}

impl Interpreter {
    /// Build an interpreter over the same compiled game the engine uses
    /// (shared catalog, including hidden pc columns).
    pub fn new(game: Arc<CompiledGame>) -> Self {
        let mut meta = Vec::new();
        for (ci, cdecl) in game.checked.ast.classes.iter().enumerate() {
            let mut scripts = Vec::new();
            for (si, script) in cdecl.scripts.iter().enumerate() {
                let mut wait_ids = FxHashMap::default();
                let mut wait_paths = Vec::new();
                collect_waits(
                    &script.body.stmts,
                    &mut Vec::new(),
                    &mut wait_ids,
                    &mut wait_paths,
                );
                let pc_col = game.classes[ci].scripts[si].pc_col;
                scripts.push(ScriptMeta {
                    pc_col,
                    wait_paths,
                    wait_ids,
                });
            }
            meta.push(scripts);
        }
        Interpreter { game, meta }
    }
}

/// DFS wait numbering — must match `sgl-compiler`'s `collect_wait_ids`.
fn collect_waits(
    stmts: &[Stmt],
    path: &mut Vec<PathStep>,
    ids: &mut FxHashMap<(u32, u32), usize>,
    paths: &mut Vec<WaitPath>,
) {
    for (i, s) in stmts.iter().enumerate() {
        match s {
            Stmt::Wait { span } => {
                let id = ids.len();
                ids.insert((span.start, span.end), id);
                let mut p = path.clone();
                p.push(PathStep::Stmt(i));
                paths.push(p);
            }
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                path.push(PathStep::Stmt(i));
                path.push(PathStep::Branch(0));
                collect_waits(&then_block.stmts, path, ids, paths);
                path.pop();
                if let Some(e) = else_block {
                    path.push(PathStep::Branch(1));
                    collect_waits(&e.stmts, path, ids, paths);
                    path.pop();
                }
                path.pop();
            }
            Stmt::Block(b) => {
                path.push(PathStep::Stmt(i));
                collect_waits(&b.stmts, path, ids, paths);
                path.pop();
            }
            _ => {}
        }
    }
}

/// Control flow outcome of executing (part of) a script.
enum Flow {
    Done,
    Waited(usize),
}

struct Ctx<'a> {
    store: &'a mut EffectStore,
    intents: &'a mut Vec<TxnIntent>,
    stats: &'a mut TickStats,
    meta: &'a ScriptMeta,
}

impl EffectPhase for Interpreter {
    fn run(
        &mut self,
        world: &World,
        store: &mut EffectStore,
        intents: &mut Vec<TxnIntent>,
        stats: &mut TickStats,
    ) {
        let game = self.game.clone();
        for (ci, cdecl) in game.checked.ast.classes.iter().enumerate() {
            let class = ClassId(ci as u32);
            let n = world.table(class).len();
            if n == 0 || cdecl.scripts.is_empty() {
                continue;
            }
            // Snapshot ids: scripts must see frozen membership. Ghost
            // rows (§4.2) never drive scripts — matches the compiled
            // executor's driving mask.
            let owned = world.driving_mask(class);
            for row in 0..n as u32 {
                if owned.as_ref().is_some_and(|m| !m[row as usize]) {
                    continue;
                }
                for (si, script) in cdecl.scripts.iter().enumerate() {
                    let meta = &self.meta[ci][si];
                    let mut env = Env::new(world, class, row);
                    let mut ctx = Ctx {
                        store,
                        intents,
                        stats,
                        meta,
                    };
                    run_script(script, &mut env, &mut ctx);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "interpreted"
    }
}

fn run_script(script: &ScriptDecl, env: &mut Env<'_>, ctx: &mut Ctx<'_>) {
    // Resume from the hidden pc.
    let resume: Option<&WaitPath> = match ctx.meta.pc_col {
        Some(col) => {
            let pc = env.world.table(env.class).column(col).f64()[env.row as usize];
            if pc > 0.0 {
                ctx.meta.wait_paths.get(pc as usize - 1)
            } else {
                None
            }
        }
        None => None,
    };
    let flow = exec_block(&script.body.stmts, resume.map(|p| p.as_slice()), env, ctx);
    if let Flow::Waited(wait_id) = flow {
        // Emit the pc effect exactly like the compiled SetPc step.
        emit_pc(env, ctx, wait_id + 1);
    }
}

fn emit_pc(env: &mut Env<'_>, ctx: &mut Ctx<'_>, next: usize) {
    // The pc effect has the same name as the pc column; find its index.
    let Some(col) = ctx.meta.pc_col else { return };
    let def = env.catalog.class(env.class);
    let name = &def.state.col(col).name;
    let Some(eidx) = def.effect_index(name) else {
        return;
    };
    ctx.store.emit_row(
        env.catalog,
        env.class,
        eidx,
        env.row,
        &Value::Number(next as f64),
        false,
        env.id,
    );
}

/// Execute a block, optionally resuming *after* the wait reached by
/// `resume` (a path into this block).
fn exec_block(
    stmts: &[Stmt],
    resume: Option<&[PathStep]>,
    env: &mut Env<'_>,
    ctx: &mut Ctx<'_>,
) -> Flow {
    let locals_mark = env.locals.len();
    let mut start = 0;
    if let Some(path) = resume {
        let PathStep::Stmt(idx) = path[0] else {
            unreachable!("paths start with a statement index");
        };
        // Re-enter the statement containing the wait.
        if path.len() > 1 {
            match &stmts[idx] {
                Stmt::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    let PathStep::Branch(b) = path[1] else {
                        unreachable!()
                    };
                    let inner = if b == 0 {
                        then_block
                    } else {
                        else_block.as_ref().expect("resume into missing else")
                    };
                    if let Flow::Waited(w) = exec_block(&inner.stmts, Some(&path[2..]), env, ctx) {
                        env.locals.truncate(locals_mark);
                        return Flow::Waited(w);
                    }
                }
                Stmt::Block(b) => {
                    if let Flow::Waited(w) = exec_block(&b.stmts, Some(&path[1..]), env, ctx) {
                        env.locals.truncate(locals_mark);
                        return Flow::Waited(w);
                    }
                }
                _ => unreachable!("resume path into non-block statement"),
            }
        }
        // else: the wait itself is stmts[idx]; resuming means skipping it.
        start = idx + 1;
    }
    for s in &stmts[start..] {
        match exec_stmt(s, env, ctx) {
            Flow::Done => {}
            Flow::Waited(w) => {
                env.locals.truncate(locals_mark);
                return Flow::Waited(w);
            }
        }
    }
    env.locals.truncate(locals_mark);
    Flow::Done
}

fn exec_stmt(s: &Stmt, env: &mut Env<'_>, ctx: &mut Ctx<'_>) -> Flow {
    match s {
        Stmt::Let { name, value, .. } => {
            let v = env.eval(value);
            env.locals.push(Local {
                name: name.name.clone(),
                value: v,
            });
            Flow::Done
        }
        Stmt::Effect {
            target, op, value, ..
        } => {
            let v = env.eval(value);
            emit_effect(target, *op, v, env, ctx);
            Flow::Done
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
            ..
        } => {
            let c = env.eval(cond).as_bool().unwrap_or(false);
            if c {
                exec_block(&then_block.stmts, None, env, ctx)
            } else if let Some(e) = else_block {
                exec_block(&e.stmts, None, env, ctx)
            } else {
                Flow::Done
            }
        }
        Stmt::Accum(a) => {
            exec_accum(a, env, ctx);
            Flow::Done
        }
        Stmt::Wait { span } => {
            let id = ctx.meta.wait_ids[&(span.start, span.end)];
            Flow::Waited(id)
        }
        Stmt::Atomic { body, .. } => {
            exec_atomic(body, env, ctx);
            Flow::Done
        }
        Stmt::Block(b) => exec_block(&b.stmts, None, env, ctx),
    }
}

fn emit_effect(target: &LValue, op: EffectOp, v: Value, env: &mut Env<'_>, ctx: &mut Ctx<'_>) {
    let insert = op == EffectOp::Insert;
    match target {
        LValue::Name(id) => {
            // Accum accumulator?
            if let Some(frame) = env.accum_write.iter_mut().rev().find(|f| f.name == id.name) {
                frame.acc = Some(
                    frame
                        .comb
                        .fold(frame.acc.take(), &normalize_insert(v, insert)),
                );
                frame.count += 1;
                return;
            }
            let def = env.catalog.class(env.class);
            let eidx = def
                .effect_index(&id.name)
                .unwrap_or_else(|| panic!("interp: unknown effect `{}`", id.name));
            ctx.store
                .emit_row(env.catalog, env.class, eidx, env.row, &v, insert, env.id);
        }
        LValue::Field { base, field } => {
            let b = env.eval(base);
            let Some(rid) = b.as_ref_id() else { return };
            if rid.is_null() {
                return;
            }
            let Some(tclass) = env.world.class_of(rid) else {
                return; // dangling ref: effect evaporates
            };
            let Some(trow) = env.world.row_of_class(tclass, rid) else {
                return;
            };
            let def = env.catalog.class(tclass);
            let eidx = def
                .effect_index(&field.name)
                .unwrap_or_else(|| panic!("interp: unknown effect `{}`", field.name));
            ctx.store
                .emit_row(env.catalog, tclass, eidx, trow, &v, insert, rid);
        }
    }
}

/// `x <= r` wraps the ref into a singleton set before folding into a
/// union accumulator.
fn normalize_insert(v: Value, insert: bool) -> Value {
    if insert {
        if let Value::Ref(r) = v {
            let mut s = sgl_storage::RefSet::new();
            s.insert(r);
            return Value::Set(s);
        }
    }
    v
}

fn exec_accum(a: &AccumStmt, env: &mut Env<'_>, ctx: &mut Ctx<'_>) {
    // Resolve the element class (case-insensitively, Fig. 2 style).
    let elem_class = resolve_class_ci(env.catalog, &a.elem_ty.name)
        .unwrap_or_else(|| panic!("interp: unknown class `{}`", a.elem_ty.name));

    // The iterated ids: the extent (snapshot) or a set expression.
    let source_is_extent = matches!(
        &a.source,
        Expr::Var(v) if resolve_class_ci(env.catalog, &v.name) == Some(elem_class)
    );
    let ids: Vec<EntityId> = if source_is_extent {
        env.world.table(elem_class).ids().to_vec()
    } else {
        match env.eval(&a.source) {
            Value::Set(s) => s.iter().collect(),
            other => panic!("interp: accum source must be a set, got {other}"),
        }
    };

    env.accum_write.push(AccumFrame {
        name: a.acc_name.name.clone(),
        comb: a.comb,
        acc: None,
        count: 0,
    });
    for id in ids {
        if env.world.row_of_class(elem_class, id).is_none() {
            continue; // dangling member of a set
        }
        env.elems.push((a.elem_name.name.clone(), elem_class, id));
        // Body is write-only wrt the accumulator; waits are banned.
        let _ = exec_block(&a.body.stmts, None, env, ctx);
        env.elems.pop();
    }
    let frame = env.accum_write.pop().unwrap();
    let combined = match frame.acc {
        Some(acc) => frame.comb.finalize(acc, frame.count),
        None => sgl_engine::exec::combinator_identity(frame.comb, acc_scalar_ty(a, env)),
    };
    env.accum_read.push(Local {
        name: a.acc_name.name.clone(),
        value: combined,
    });
    let _ = exec_block(&a.rest.stmts, None, env, ctx);
    env.accum_read.pop();
}

fn acc_scalar_ty(a: &AccumStmt, env: &Env<'_>) -> sgl_storage::ScalarType {
    match &a.acc_ty {
        sgl_ast::TypeExpr::Number => sgl_storage::ScalarType::Number,
        sgl_ast::TypeExpr::Bool => sgl_storage::ScalarType::Bool,
        sgl_ast::TypeExpr::Ref(c) => {
            sgl_storage::ScalarType::Ref(resolve_class_ci(env.catalog, c).unwrap_or(env.class))
        }
        sgl_ast::TypeExpr::Set(c) => {
            sgl_storage::ScalarType::Set(resolve_class_ci(env.catalog, c).unwrap_or(env.class))
        }
    }
}

fn exec_atomic(body: &Block, env: &mut Env<'_>, ctx: &mut Ctx<'_>) {
    let mut writes = Vec::new();
    collect_atomic_writes(&body.stmts, env, &mut writes);
    if !writes.is_empty() {
        ctx.intents.push(TxnIntent {
            initiator: env.id,
            writes,
        });
        ctx.stats.txn.issued += 1;
    }
}

fn collect_atomic_writes(stmts: &[Stmt], env: &mut Env<'_>, out: &mut Vec<IntentWrite>) {
    let mark = env.locals.len();
    for s in stmts {
        match s {
            Stmt::Let { name, value, .. } => {
                let v = env.eval(value);
                env.locals.push(Local {
                    name: name.name.clone(),
                    value: v,
                });
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                if env.eval(cond).as_bool().unwrap_or(false) {
                    collect_atomic_writes(&then_block.stmts, env, out);
                } else if let Some(e) = else_block {
                    collect_atomic_writes(&e.stmts, env, out);
                }
            }
            Stmt::Effect {
                target, op, value, ..
            } => {
                let v = env.eval(value);
                let insert = *op == EffectOp::Insert;
                let (tid, name) = match target {
                    LValue::Name(id) => (env.id, id.name.clone()),
                    LValue::Field { base, field } => {
                        let b = env.eval(base);
                        let Some(rid) = b.as_ref_id() else { continue };
                        (rid, field.name.clone())
                    }
                };
                if tid.is_null() {
                    continue;
                }
                let Some(tclass) = env.world.class_of(tid) else {
                    continue;
                };
                let def = env.catalog.class(tclass);
                let Some(state_col) = def.state.index_of(&name) else {
                    continue;
                };
                out.push(IntentWrite {
                    target: tid,
                    class: tclass,
                    state_col,
                    value: v,
                    insert,
                });
            }
            Stmt::Block(b) => collect_atomic_writes(&b.stmts, env, out),
            _ => {}
        }
    }
    env.locals.truncate(mark);
}

fn resolve_class_ci(catalog: &sgl_storage::Catalog, name: &str) -> Option<ClassId> {
    if let Some(c) = catalog.class_by_name(name) {
        return Some(c.id);
    }
    let lower = name.to_lowercase();
    catalog
        .classes()
        .iter()
        .find(|c| c.name.to_lowercase() == lower)
        .map(|c| c.id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_engine::{Engine, EngineConfig};
    use sgl_frontend::check;

    fn engines(src: &str) -> (Engine, Engine) {
        let game =
            sgl_compiler::compile(check(src).unwrap_or_else(|e| panic!("{}", e.render(src))))
                .unwrap();
        let game = Arc::new(game);
        let compiled = Engine::new((*game).clone(), EngineConfig::default()).unwrap();
        let interp = Engine::with_executor(
            game.clone(),
            EngineConfig::default(),
            Box::new(Interpreter::new(game)),
        )
        .unwrap();
        (compiled, interp)
    }

    const ACCUM_GAME: &str = r#"
class Unit {
state:
  number x = 0;
  number y = 0;
  number range = 1;
  number seen = 0;
effects:
  number near : sum;
update:
  seen = near;
script count {
  accum number cnt with sum over Unit u from Unit {
    if (u.x >= x - range && u.x <= x + range &&
        u.y >= y - range && u.y <= y + range) {
      cnt <- 1;
    }
  } in {
    near <- cnt;
  }
}
}
"#;

    #[test]
    fn interpreter_matches_compiled_on_fig2() {
        let (mut c, mut i) = engines(ACCUM_GAME);
        let xs = [0.0, 0.7, 1.9, 5.0, 5.5, -3.0];
        for &x in &xs {
            c.spawn("Unit", &[("x", Value::Number(x))]).unwrap();
            i.spawn("Unit", &[("x", Value::Number(x))]).unwrap();
        }
        c.run(3);
        i.run(3);
        let cw = c.world();
        let iw = i.world();
        let class = cw.class_id("Unit").unwrap();
        for id in cw.table(class).ids() {
            assert_eq!(
                cw.get(*id, "seen").unwrap(),
                iw.get(*id, "seen").unwrap(),
                "entity {id}"
            );
        }
    }

    #[test]
    fn interpreter_multi_tick_pc_matches_compiled() {
        let src = r#"
class A {
state:
  number step = 0;
effects:
  number mark : max;
update:
  step = mark;
script s {
  mark <- 1;
  waitNextTick;
  if (step > 0) {
    mark <- 2;
    waitNextTick;
  }
  mark <- 3;
}
}
"#;
        let (mut c, mut i) = engines(src);
        let a = c.spawn("A", &[]).unwrap();
        let b = i.spawn("A", &[]).unwrap();
        for t in 0..6 {
            c.tick();
            i.tick();
            let cv = c.get(a, "step").unwrap();
            let iv = i.get(b, "step").unwrap();
            assert_eq!(cv, iv, "tick {t}");
            // Hidden pc agrees too.
            let cpc = c.get(a, "__pc_0").unwrap();
            let ipc = i.get(b, "__pc_0").unwrap();
            assert_eq!(cpc, ipc, "pc at tick {t}");
        }
    }

    #[test]
    fn interpreter_txn_matches_compiled() {
        let src = r#"
class Trader {
state:
  number gold = 100;
effects:
  number gold : sum;
update:
  gold by transactions;
constraint gold >= 0;
script spend {
  atomic {
    gold <- -60;
  }
}
}
"#;
        let (mut c, mut i) = engines(src);
        let a = c.spawn("Trader", &[]).unwrap();
        let b = i.spawn("Trader", &[]).unwrap();
        for _ in 0..3 {
            c.tick();
            i.tick();
        }
        assert_eq!(c.get(a, "gold").unwrap(), i.get(b, "gold").unwrap());
        assert_eq!(c.get(a, "gold").unwrap(), Value::Number(40.0));
    }

    #[test]
    fn interpreter_ref_effects_match() {
        let src = r#"
class U {
state:
  ref<U> target = null;
  number hp = 10;
effects:
  number damage : sum;
update:
  hp = hp - damage;
script attack {
  if (target != null) {
    target.damage <- 2;
  }
}
}
"#;
        let (mut c, mut i) = engines(src);
        let a1 = c.spawn("U", &[]).unwrap();
        let a2 = c.spawn("U", &[("target", Value::Ref(a1))]).unwrap();
        let b1 = i.spawn("U", &[]).unwrap();
        let b2 = i.spawn("U", &[("target", Value::Ref(b1))]).unwrap();
        c.run(2);
        i.run(2);
        assert_eq!(c.get(a1, "hp").unwrap(), Value::Number(6.0));
        assert_eq!(i.get(b1, "hp").unwrap(), Value::Number(6.0));
        assert_eq!(c.get(a2, "hp").unwrap(), i.get(b2, "hp").unwrap());
    }
}
