//! Scalar AST evaluation environment for one entity.

use sgl_ast::{BinOp, Expr, UnOp};
use sgl_engine::World;
use sgl_storage::{Catalog, ClassId, EntityId, RefSet, Value};

/// A local binding.
#[derive(Debug, Clone)]
pub struct Local {
    /// Name.
    pub name: String,
    /// Value.
    pub value: Value,
}

/// One in-flight accumulator (write-only while iterating).
pub struct AccumFrame {
    /// Accumulator name.
    pub name: String,
    /// ⊕ combinator.
    pub comb: sgl_storage::Combinator,
    /// Folded value (None before first assignment).
    pub acc: Option<Value>,
    /// Assignment count (for `avg`).
    pub count: u32,
}

/// Evaluation environment for one (entity, script) execution.
pub struct Env<'a> {
    /// The world (read-only state).
    pub world: &'a World,
    /// Catalog.
    pub catalog: &'a Catalog,
    /// The executing entity's class.
    pub class: ClassId,
    /// Its extent row.
    pub row: u32,
    /// Its id.
    pub id: EntityId,
    /// Lexical locals, innermost last.
    pub locals: Vec<Local>,
    /// Readable accum results (the `in` blocks).
    pub accum_read: Vec<Local>,
    /// Write-only accumulators (accum bodies), innermost last.
    pub accum_write: Vec<AccumFrame>,
    /// Element bindings of enclosing accum bodies: `(name, class, id)`.
    pub elems: Vec<(String, ClassId, EntityId)>,
}

impl<'a> Env<'a> {
    /// Fresh environment for one entity.
    pub fn new(world: &'a World, class: ClassId, row: u32) -> Self {
        let id = world.table(class).id_at(row as usize);
        Env {
            world,
            catalog: world.catalog(),
            class,
            row,
            id,
            locals: Vec::new(),
            accum_read: Vec::new(),
            accum_write: Vec::new(),
            elems: Vec::new(),
        }
    }

    fn read_state(&self, class: ClassId, row: u32, name: &str) -> Option<Value> {
        let def = self.catalog.class(class);
        let col = def.state.index_of(name)?;
        Some(self.world.table(class).column(col).get(row as usize))
    }

    /// Resolve a bare variable.
    pub fn resolve(&self, name: &str) -> Option<Value> {
        for l in self.locals.iter().rev() {
            if l.name == name {
                return Some(l.value.clone());
            }
        }
        for l in self.accum_read.iter().rev() {
            if l.name == name {
                return Some(l.value.clone());
            }
        }
        for (n, _, id) in self.elems.iter().rev() {
            if n == name {
                return Some(Value::Ref(*id));
            }
        }
        self.read_state(self.class, self.row, name)
    }

    /// Evaluate an expression for this entity.
    pub fn eval(&self, e: &Expr) -> Value {
        match e {
            Expr::Number(x, _) => Value::Number(*x),
            Expr::Bool(b, _) => Value::Bool(*b),
            Expr::Null(_) => Value::Ref(EntityId::NULL),
            Expr::SelfRef(_) => Value::Ref(self.id),
            Expr::Var(id) => self
                .resolve(&id.name)
                .unwrap_or_else(|| panic!("interp: unresolved `{}`", id.name)),
            Expr::Field { base, field, .. } => {
                let b = self.eval(base);
                let Some(rid) = b.as_ref_id() else {
                    panic!("interp: field access on non-ref");
                };
                if rid.is_null() {
                    return Value::Number(0.0);
                }
                // Which class? The ref's static class is known to the
                // typechecker; dynamically we search (ids are globally
                // unique, so this is unambiguous).
                match self.world.class_of(rid) {
                    Some(c) => {
                        let row = self.world.row_of_class(c, rid).unwrap();
                        self.read_state(c, row, &field.name).unwrap_or_else(|| {
                            self.catalog
                                .class(c)
                                .state
                                .index_of(&field.name)
                                .map(|i| self.catalog.class(c).state.col(i).ty.zero())
                                .unwrap_or(Value::Number(0.0))
                        })
                    }
                    None => Value::Number(0.0), // dangling ref → zero
                }
            }
            Expr::Unary { op, expr, .. } => {
                let v = self.eval(expr);
                match op {
                    UnOp::Neg => Value::Number(-v.as_number().unwrap_or(0.0)),
                    UnOp::Not => Value::Bool(!v.as_bool().unwrap_or(false)),
                }
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = self.eval(lhs);
                let b = self.eval(rhs);
                eval_bin(*op, &a, &b)
            }
            Expr::Call { func, args, .. } => {
                let vals: Vec<Value> = args.iter().map(|a| self.eval(a)).collect();
                eval_builtin(&func.name, &vals)
            }
        }
    }
}

fn num(v: &Value) -> f64 {
    v.as_number().unwrap_or(0.0)
}

/// Scalar binary operators with SGL semantics.
pub fn eval_bin(op: BinOp, a: &Value, b: &Value) -> Value {
    use BinOp::*;
    match op {
        Add => Value::Number(num(a) + num(b)),
        Sub => Value::Number(num(a) - num(b)),
        Mul => Value::Number(num(a) * num(b)),
        Div => Value::Number(num(a) / num(b)),
        Mod => Value::Number(num(a) % num(b)),
        Lt => Value::Bool(num(a) < num(b)),
        Le => Value::Bool(num(a) <= num(b)),
        Gt => Value::Bool(num(a) > num(b)),
        Ge => Value::Bool(num(a) >= num(b)),
        Eq => Value::Bool(values_eq(a, b)),
        Ne => Value::Bool(!values_eq(a, b)),
        And => Value::Bool(a.as_bool().unwrap_or(false) && b.as_bool().unwrap_or(false)),
        Or => Value::Bool(a.as_bool().unwrap_or(false) || b.as_bool().unwrap_or(false)),
    }
}

fn values_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Ref(x), Value::Ref(y)) => x == y,
        _ => false,
    }
}

/// Scalar builtins with SGL semantics.
pub fn eval_builtin(name: &str, args: &[Value]) -> Value {
    match name {
        "abs" => Value::Number(num(&args[0]).abs()),
        "sqrt" => Value::Number(num(&args[0]).sqrt()),
        "floor" => Value::Number(num(&args[0]).floor()),
        "ceil" => Value::Number(num(&args[0]).ceil()),
        "min" => Value::Number(num(&args[0]).min(num(&args[1]))),
        "max" => Value::Number(num(&args[0]).max(num(&args[1]))),
        "clamp" => Value::Number(num(&args[0]).max(num(&args[1])).min(num(&args[2]))),
        "dist" => {
            let dx = num(&args[0]) - num(&args[2]);
            let dy = num(&args[1]) - num(&args[3]);
            Value::Number((dx * dx + dy * dy).sqrt())
        }
        "id" => Value::Number(args[0].as_ref_id().map_or(0.0, |r| r.0 as f64)),
        "size" => Value::Number(args[0].as_set().map_or(0.0, |s| s.len() as f64)),
        "contains" => Value::Bool(
            args[0]
                .as_set()
                .zip(args[1].as_ref_id())
                .is_some_and(|(s, id)| s.contains(id)),
        ),
        "union" => {
            let mut s = args[0].as_set().cloned().unwrap_or_else(RefSet::new);
            if let Some(b) = args[1].as_set() {
                s.union_with(b);
            }
            Value::Set(s)
        }
        other => panic!("interp: unknown builtin `{other}`"),
    }
}
