//! Offline no-op stub of `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on storage types as
//! forward-looking schema annotations, but no serde *format* crate is in
//! the dependency set (checkpoints use a hand-rolled codec over `bytes`).
//! These derives therefore expand to nothing; swapping in the real serde
//! requires no source change.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]` (accepts `#[serde(...)]` helpers).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]` (accepts `#[serde(...)]` helpers).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
