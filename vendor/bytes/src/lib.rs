//! Offline API-subset stub of the `bytes` crate: exactly the surface the
//! checkpoint codec uses — [`Bytes`], [`BytesMut`], little-endian
//! [`Buf`]/[`BufMut`] accessors.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(data),
        }
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Drop the contents, keeping the allocation (for reusable
    /// per-session encode buffers).
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential big-buffer reads (little-endian subset).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8;

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32;

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64;

    /// Read a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

/// Sequential buffer writes (little-endian subset).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f64_le(-1.5);
        w.put_slice(b"xy");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), -1.5);
        assert_eq!(r, b"xy");
    }

    #[test]
    fn advance_and_slicing() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(&b[..2], &[1, 2]);
        let mut r: &[u8] = &b;
        r.advance(3);
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.get_u8(), 4);
    }
}
