//! Offline API-subset stub of the `epoll` crate (see `vendor/README.md`),
//! plus the [`shim`] extensions `sgl-net`'s I/O shards are built on.
//!
//! The top-level items (`create` / `ctl` / `wait`, [`Event`],
//! [`Events`], [`ControlOptions`]) mirror the real `epoll` crate's
//! surface one-to-one, implemented over raw `extern "C"` syscalls —
//! the workspace forbids `unsafe` everywhere but `crates/engine` and
//! the vendor stubs, so every line of unsafe I/O plumbing is
//! concentrated here. The [`shim`] module is **stub-only** surface
//! (a `poll(2)` fallback selector, a pipe-based waker, instrumented
//! read/write wrappers and per-thread syscall counters); when the real
//! crate is swapped in, `shim` must be re-homed into a first-party
//! module (it has no equivalent upstream).
//!
//! Only Unix is supported; the listener's legacy sweep mode covers
//! other platforms without touching this crate.

#![cfg(unix)]

use std::io;
use std::ops::{BitOr, BitOrAssign};
use std::os::raw::{c_int, c_void};
use std::os::unix::io::RawFd;

// ---------------------------------------------------------------------------
// Raw syscall bindings (libc is already linked by std).
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut Event) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut Event, maxevents: c_int, timeout: c_int) -> c_int;
}

#[cfg(target_os = "linux")]
type NfdsT = std::os::raw::c_ulong;
#[cfg(not(target_os = "linux"))]
type NfdsT = std::os::raw::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
}

#[cfg(target_os = "linux")]
const SOL_SOCKET: c_int = 1;
#[cfg(target_os = "linux")]
const SO_LINGER: c_int = 13;
#[cfg(not(target_os = "linux"))]
const SOL_SOCKET: c_int = 0xffff;
#[cfg(not(target_os = "linux"))]
const SO_LINGER: c_int = 0x80;

#[repr(C)]
struct Linger {
    l_onoff: c_int,
    l_linger: c_int,
}

#[cfg(target_os = "linux")]
const EPOLL_CLOEXEC: c_int = 0o2000000;
const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x0004;

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: c_int = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: c_int = 8;

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

#[repr(C)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------------
// The real crate's API subset.
// ---------------------------------------------------------------------------

/// One epoll event: interest/readiness flags plus the caller's token.
///
/// The kernel reads and writes this layout directly; on x86-64 the
/// struct is packed (matching the kernel ABI).
#[derive(Clone, Copy, Debug)]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
pub struct Event {
    pub events: u32,
    pub data: u64,
}

impl Event {
    pub fn new(events: Events, data: u64) -> Event {
        Event {
            events: events.bits(),
            data,
        }
    }

    /// The readiness flags, copied out (the struct may be packed).
    pub fn events(&self) -> Events {
        Events::from_bits(self.events)
    }

    /// The caller token, copied out (the struct may be packed).
    pub fn data(&self) -> u64 {
        self.data
    }
}

/// Readiness/interest flag set (`EPOLLIN | EPOLLOUT | ...`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Events(u32);

impl Events {
    pub const EPOLLIN: Events = Events(0x001);
    pub const EPOLLOUT: Events = Events(0x004);
    pub const EPOLLERR: Events = Events(0x008);
    pub const EPOLLHUP: Events = Events(0x010);
    pub const EPOLLRDHUP: Events = Events(0x2000);
    pub const fn empty() -> Events {
        Events(0)
    }
    pub const fn bits(self) -> u32 {
        self.0
    }
    pub const fn from_bits(bits: u32) -> Events {
        Events(bits)
    }
    pub const fn contains(self, other: Events) -> bool {
        self.0 & other.0 == other.0
    }
    pub const fn intersects(self, other: Events) -> bool {
        self.0 & other.0 != 0
    }
}

impl BitOr for Events {
    type Output = Events;
    fn bitor(self, rhs: Events) -> Events {
        Events(self.0 | rhs.0)
    }
}

impl BitOrAssign for Events {
    fn bitor_assign(&mut self, rhs: Events) {
        self.0 |= rhs.0;
    }
}

/// `epoll_ctl` operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(i32)]
#[allow(non_camel_case_types)] // the real crate's spelling
pub enum ControlOptions {
    EPOLL_CTL_ADD = 1,
    EPOLL_CTL_DEL = 2,
    EPOLL_CTL_MOD = 3,
}

/// `epoll_create1`: a new epoll instance (Linux only).
#[cfg(target_os = "linux")]
pub fn create(close_exec: bool) -> io::Result<RawFd> {
    let flags = if close_exec { EPOLL_CLOEXEC } else { 0 };
    cvt(unsafe { epoll_create1(flags) })
}

/// `epoll_ctl`: add/modify/remove `fd` on the instance (Linux only).
#[cfg(target_os = "linux")]
pub fn ctl(epfd: RawFd, op: ControlOptions, fd: RawFd, mut event: Event) -> io::Result<()> {
    cvt(unsafe { epoll_ctl(epfd, op as c_int, fd, &mut event) }).map(|_| ())
}

/// `epoll_wait`: block up to `timeout` ms (−1 = forever) for readiness;
/// returns how many entries of `buf` were filled (Linux only).
#[cfg(target_os = "linux")]
pub fn wait(epfd: RawFd, timeout: i32, buf: &mut [Event]) -> io::Result<usize> {
    shim::stats::bump_waits();
    loop {
        let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout) };
        match cvt(n) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Close any fd this crate handed out.
pub fn close_fd(fd: RawFd) -> io::Result<()> {
    cvt(unsafe { close(fd) }).map(|_| ())
}

// ---------------------------------------------------------------------------
// Shim-only extensions (no upstream equivalent — re-home on swap).
// ---------------------------------------------------------------------------

pub mod shim {
    //! Extensions the transport shards need beyond the raw epoll calls:
    //! a backend-agnostic [`Selector`] (epoll or portable `poll(2)`),
    //! a pipe-based cross-thread [`Waker`], instrumented nonblocking
    //! [`read_fd`]/[`write_fd`] wrappers, and per-thread syscall
    //! counters ([`stats`]) — the instrumented hook the regression
    //! tests count shard syscalls with.

    use super::*;

    /// Which kernel readiness API a [`Selector`] uses.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Backend {
        /// `epoll(7)` (Linux).
        Epoll,
        /// Portable `poll(2)` fallback: the registered set is kept in
        /// user space and a `pollfd` array is rebuilt per wait.
        Poll,
    }

    /// One readiness report from [`Selector::wait`].
    #[derive(Clone, Copy, Debug)]
    pub struct Ready {
        /// The token the fd was registered under.
        pub token: u64,
        pub readable: bool,
        pub writable: bool,
        /// Error or hangup was reported alongside (the owner should
        /// read to collect the error / EOF).
        pub hangup: bool,
    }

    /// Interest flags for [`Selector::register`]/[`Selector::rearm`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Interest {
        pub readable: bool,
        pub writable: bool,
    }

    impl Interest {
        pub const READ: Interest = Interest {
            readable: true,
            writable: false,
        };
        pub const WRITE: Interest = Interest {
            readable: false,
            writable: true,
        };
        pub const BOTH: Interest = Interest {
            readable: true,
            writable: true,
        };
        pub const NONE: Interest = Interest {
            readable: false,
            writable: false,
        };
    }

    #[cfg(target_os = "linux")]
    fn interest_events(i: Interest) -> Events {
        let mut ev = Events::EPOLLRDHUP;
        if i.readable {
            ev |= Events::EPOLLIN;
        }
        if i.writable {
            ev |= Events::EPOLLOUT;
        }
        ev
    }

    enum Sel {
        #[cfg(target_os = "linux")]
        Epoll { epfd: RawFd, buf: Vec<Event> },
        Poll {
            // Registered fds with their tokens and interests, in
            // registration order.
            fds: Vec<(RawFd, u64, Interest)>,
        },
    }

    /// A level-triggered readiness selector over one of the two
    /// backends. Register each fd once under a caller token; `rearm`
    /// swaps the interest set (e.g. add write interest only while an
    /// outbound queue is non-empty — level-triggered write readiness
    /// would busy-loop otherwise).
    pub struct Selector {
        sel: Sel,
    }

    impl Selector {
        pub fn new(backend: Backend) -> io::Result<Selector> {
            match backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll => Ok(Selector {
                    sel: Sel::Epoll {
                        epfd: create(true)?,
                        buf: vec![Event::new(Events::empty(), 0); 256],
                    },
                }),
                #[cfg(not(target_os = "linux"))]
                Backend::Epoll => Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "epoll backend requires Linux (use Backend::Poll)",
                )),
                Backend::Poll => Ok(Selector {
                    sel: Sel::Poll { fds: Vec::new() },
                }),
            }
        }

        pub fn backend(&self) -> Backend {
            match self.sel {
                #[cfg(target_os = "linux")]
                Sel::Epoll { .. } => Backend::Epoll,
                Sel::Poll { .. } => Backend::Poll,
            }
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            match &mut self.sel {
                #[cfg(target_os = "linux")]
                Sel::Epoll { epfd, .. } => ctl(
                    *epfd,
                    ControlOptions::EPOLL_CTL_ADD,
                    fd,
                    Event::new(interest_events(interest), token),
                ),
                Sel::Poll { fds } => {
                    fds.push((fd, token, interest));
                    Ok(())
                }
            }
        }

        pub fn rearm(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            match &mut self.sel {
                #[cfg(target_os = "linux")]
                Sel::Epoll { epfd, .. } => ctl(
                    *epfd,
                    ControlOptions::EPOLL_CTL_MOD,
                    fd,
                    Event::new(interest_events(interest), token),
                ),
                Sel::Poll { fds } => {
                    for entry in fds.iter_mut() {
                        if entry.0 == fd {
                            entry.2 = interest;
                            return Ok(());
                        }
                    }
                    Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
                }
            }
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            match &mut self.sel {
                #[cfg(target_os = "linux")]
                Sel::Epoll { epfd, .. } => ctl(
                    *epfd,
                    ControlOptions::EPOLL_CTL_DEL,
                    fd,
                    Event::new(Events::empty(), 0),
                ),
                Sel::Poll { fds } => {
                    fds.retain(|&(f, _, _)| f != fd);
                    Ok(())
                }
            }
        }

        /// Block up to `timeout_ms` (−1 = forever) and collect ready
        /// fds into `out` (cleared first). Counts one wait syscall in
        /// [`stats`].
        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Ready>) -> io::Result<()> {
            out.clear();
            match &mut self.sel {
                #[cfg(target_os = "linux")]
                Sel::Epoll { epfd, buf } => {
                    let n = wait(*epfd, timeout_ms, buf)?;
                    for ev in &buf[..n] {
                        let flags = ev.events();
                        out.push(Ready {
                            token: ev.data(),
                            readable: flags.intersects(Events::EPOLLIN),
                            writable: flags.intersects(Events::EPOLLOUT),
                            hangup: flags.intersects(
                                Events::EPOLLERR | Events::EPOLLHUP | Events::EPOLLRDHUP,
                            ),
                        });
                    }
                    Ok(())
                }
                Sel::Poll { fds } => {
                    let mut pfds: Vec<PollFd> = fds
                        .iter()
                        .map(|&(fd, _, i)| PollFd {
                            fd,
                            events: if i.readable { POLLIN } else { 0 }
                                | if i.writable { POLLOUT } else { 0 },
                            revents: 0,
                        })
                        .collect();
                    stats::bump_waits();
                    loop {
                        let n = unsafe { poll(pfds.as_mut_ptr(), pfds.len() as NfdsT, timeout_ms) };
                        match cvt(n) {
                            Ok(_) => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(e) => return Err(e),
                        }
                    }
                    for (pfd, &(_, token, _)) in pfds.iter().zip(fds.iter()) {
                        if pfd.revents == 0 {
                            continue;
                        }
                        out.push(Ready {
                            token,
                            readable: pfd.revents & POLLIN != 0,
                            writable: pfd.revents & POLLOUT != 0,
                            hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                        });
                    }
                    Ok(())
                }
            }
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            #[cfg(target_os = "linux")]
            if let Sel::Epoll { epfd, .. } = self.sel {
                let _ = close_fd(epfd);
            }
        }
    }

    /// A cross-thread wakeup channel: a nonblocking pipe whose read end
    /// is registered with the owning shard's [`Selector`]. `wake` is
    /// safe from any thread holding the (shared) waker; a full pipe
    /// means a wake is already pending, which is exactly as good.
    pub struct Waker {
        rd: RawFd,
        wr: RawFd,
    }

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            let mut fds = [0 as c_int; 2];
            cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
            for fd in fds {
                let flags = cvt(unsafe { fcntl(fd, F_GETFL, 0) })?;
                cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
            }
            Ok(Waker {
                rd: fds[0],
                wr: fds[1],
            })
        }

        /// The read end, for [`Selector::register`].
        pub fn fd(&self) -> RawFd {
            self.rd
        }

        /// Nudge the owning selector out of its wait.
        pub fn wake(&self) {
            stats::bump_wakes();
            let byte = [1u8];
            let _ = unsafe { write(self.wr, byte.as_ptr() as *const c_void, 1) };
        }

        /// Swallow pending wake bytes (call when the wake token fires).
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                let n = unsafe { read(self.rd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
                if n <= 0 {
                    break;
                }
            }
        }
    }

    // The fds are owned by the Waker alone; both ends are plain ints.
    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}

    impl Drop for Waker {
        fn drop(&mut self) {
            let _ = close_fd(self.rd);
            let _ = close_fd(self.wr);
        }
    }

    /// Instrumented nonblocking read: one `read(2)` on `fd`, counted in
    /// [`stats`]. Returns `Ok(0)` on EOF; `WouldBlock` surfaces as the
    /// usual `io::Error`.
    pub fn read_fd(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
        stats::bump_reads();
        let n = unsafe { read(fd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    /// Instrumented nonblocking write: one `write(2)` on `fd`, counted
    /// in [`stats`].
    pub fn write_fd(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
        stats::bump_writes();
        let n = unsafe { write(fd, buf.as_ptr() as *const c_void, buf.len()) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    /// Best-effort `RLIMIT_NOFILE` raise (soak runs open thousands of
    /// loopback sockets; default soft limits are often 1024). Returns
    /// the resulting soft limit.
    pub fn raise_fd_limit(want: u64) -> io::Result<u64> {
        let mut lim = RLimit { cur: 0, max: 0 };
        cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
        if lim.cur >= want {
            return Ok(lim.cur);
        }
        let new = RLimit {
            cur: want.min(lim.max),
            max: lim.max,
        };
        cvt(unsafe { setrlimit(RLIMIT_NOFILE, &new) })?;
        Ok(new.cur)
    }

    /// Arm an abortive close: with `SO_LINGER { on, 0 }` set, closing
    /// the socket sends RST instead of FIN — the peer sees a connection
    /// reset, not an orderly shutdown. Hostile-network harnesses use
    /// this to simulate peers that vanish without saying goodbye
    /// (`std`'s `TcpStream::set_linger` is still unstable).
    pub fn set_linger_rst(fd: RawFd) -> io::Result<()> {
        let linger = Linger {
            l_onoff: 1,
            l_linger: 0,
        };
        cvt(unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_LINGER,
                (&linger as *const Linger).cast(),
                std::mem::size_of::<Linger>() as u32,
            )
        })?;
        Ok(())
    }

    pub mod stats {
        //! Per-thread syscall counters — the instrumented test hook.
        //! Every wait/read/write/wake issued through this crate bumps
        //! the calling thread's counters; an I/O shard publishes its
        //! own snapshot after each loop turn, which is what lets a
        //! regression test assert "that shard did zero syscalls".

        use std::cell::Cell;

        thread_local! {
            static WAITS: Cell<u64> = const { Cell::new(0) };
            static READS: Cell<u64> = const { Cell::new(0) };
            static WRITES: Cell<u64> = const { Cell::new(0) };
            static WAKES: Cell<u64> = const { Cell::new(0) };
        }

        /// Snapshot of the calling thread's counters since thread start
        /// (or the last [`reset`]).
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct IoCounters {
            /// `epoll_wait`/`poll` syscalls.
            pub waits: u64,
            /// Socket/pipe `read(2)` syscalls via `read_fd`.
            pub reads: u64,
            /// Socket/pipe `write(2)` syscalls via `write_fd`.
            pub writes: u64,
            /// Waker nudges sent *from* this thread.
            pub wakes: u64,
        }

        pub fn snapshot() -> IoCounters {
            IoCounters {
                waits: WAITS.with(|c| c.get()),
                reads: READS.with(|c| c.get()),
                writes: WRITES.with(|c| c.get()),
                wakes: WAKES.with(|c| c.get()),
            }
        }

        pub fn reset() {
            WAITS.with(|c| c.set(0));
            READS.with(|c| c.set(0));
            WRITES.with(|c| c.set(0));
            WAKES.with(|c| c.set(0));
        }

        pub(crate) fn bump_waits() {
            WAITS.with(|c| c.set(c.get() + 1));
        }
        pub(crate) fn bump_reads() {
            READS.with(|c| c.set(c.get() + 1));
        }
        pub(crate) fn bump_writes() {
            WRITES.with(|c| c.set(c.get() + 1));
        }
        pub(crate) fn bump_wakes() {
            WAKES.with(|c| c.set(c.get() + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::shim::{Backend, Interest, Ready, Selector, Waker};
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (b, _) = l.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    fn backends() -> Vec<Backend> {
        if cfg!(target_os = "linux") {
            vec![Backend::Epoll, Backend::Poll]
        } else {
            vec![Backend::Poll]
        }
    }

    #[test]
    fn readable_when_peer_writes_either_backend() {
        for backend in backends() {
            let (mut a, b) = pair();
            let mut sel = Selector::new(backend).unwrap();
            sel.register(b.as_raw_fd(), 7, Interest::READ).unwrap();
            let mut out: Vec<Ready> = Vec::new();
            sel.wait(0, &mut out).unwrap();
            assert!(out.is_empty(), "{backend:?}: idle socket reported ready");
            a.write_all(b"x").unwrap();
            sel.wait(1000, &mut out).unwrap();
            assert_eq!(out.len(), 1, "{backend:?}");
            assert_eq!(out[0].token, 7);
            assert!(out[0].readable);
        }
    }

    #[test]
    fn waker_crosses_threads_and_drains() {
        for backend in backends() {
            let waker = std::sync::Arc::new(Waker::new().unwrap());
            let mut sel = Selector::new(backend).unwrap();
            sel.register(waker.fd(), u64::MAX, Interest::READ).unwrap();
            let w = waker.clone();
            let t = std::thread::spawn(move || w.wake());
            let mut out = Vec::new();
            sel.wait(5000, &mut out).unwrap();
            t.join().unwrap();
            assert_eq!(out.len(), 1, "{backend:?}");
            assert_eq!(out[0].token, u64::MAX);
            waker.drain();
            sel.wait(0, &mut out).unwrap();
            assert!(out.is_empty(), "{backend:?}: drained waker still ready");
        }
    }

    #[test]
    fn write_interest_is_rearmable() {
        for backend in backends() {
            let (a, mut b) = pair();
            let mut sel = Selector::new(backend).unwrap();
            sel.register(a.as_raw_fd(), 1, Interest::READ).unwrap();
            let mut out = Vec::new();
            sel.wait(0, &mut out).unwrap();
            assert!(out.is_empty(), "{backend:?}");
            sel.rearm(a.as_raw_fd(), 1, Interest::BOTH).unwrap();
            sel.wait(1000, &mut out).unwrap();
            assert!(out.iter().any(|r| r.writable), "{backend:?}");
            drop(b.write(b"ok"));
            let mut tmp = [0u8; 8];
            let _ = std::io::Read::read(&mut (&a), &mut tmp);
        }
    }

    #[test]
    fn instrumented_io_counts_syscalls() {
        super::shim::stats::reset();
        let before = super::shim::stats::snapshot();
        let (a, b) = pair();
        super::shim::write_fd(a.as_raw_fd(), b"ping").unwrap();
        // Loopback delivery is asynchronous; poll until the bytes land.
        let mut got = 0;
        let mut buf = [0u8; 8];
        for _ in 0..1000 {
            match super::shim::read_fd(b.as_raw_fd(), &mut buf) {
                Ok(n) if n > 0 => {
                    got = n;
                    break;
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
        assert_eq!(&buf[..got], b"ping");
        let after = super::shim::stats::snapshot();
        assert!(after.writes > before.writes);
        assert!(after.reads > before.reads);
    }

    #[test]
    fn eof_reads_zero() {
        let (a, b) = pair();
        drop(a);
        let mut buf = [0u8; 8];
        let mut n = None;
        for _ in 0..1000 {
            match super::shim::read_fd(b.as_raw_fd(), &mut buf) {
                Ok(k) => {
                    n = Some(k);
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(n, Some(0), "closed peer must read as EOF");
    }
}
