//! Offline API-subset stub of `serde`.
//!
//! Re-exports the no-op derive macros; the trait definitions exist so
//! `use serde::{Serialize, Deserialize}` resolves in both namespaces.
//! No serde format crate is in the workspace, so nothing ever calls
//! these traits — the derives are schema annotations only.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
