//! The [`Strategy`] trait and its combinators.

use std::ops::Range;
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive structures: `depth` levels of `recurse` over `self` as
    /// the leaf. (`desired_size` / `expected_branch_size` are accepted
    /// for API parity; depth alone bounds this stub's output.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            current = Union::new(vec![leaf.clone(), recurse(current).boxed()]).boxed();
        }
        current
    }

    /// Type-erase into a clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

/// Object-safe view of [`Strategy`] for [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (nonempty) option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.index(self.options.len());
        self.options[pick].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty inclusive range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy::tests", 0)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (0i32..10).generate(&mut r);
            assert!((0..10).contains(&v));
            let (a, b) = (0u32..5, -1.0f64..1.0).generate(&mut r);
            assert!(a < 5 && (-1.0..1.0).contains(&b));
        }
    }

    #[test]
    fn map_and_flat_map() {
        let mut r = rng();
        let s = (1u32..4).prop_map(|n| n * 10);
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!(v == 10 || v == 20 || v == 30);
        }
        let f = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..2, n));
        for _ in 0..50 {
            let v = f.generate(&mut r);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn recursive_terminates_and_nests() {
        let mut r = rng();
        let leaf = (0u32..10).prop_map(|n| n.to_string());
        let expr = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        let mut saw_nested = false;
        for _ in 0..100 {
            let v = expr.generate(&mut r);
            assert!(!v.is_empty());
            if v.contains('+') {
                saw_nested = true;
            }
        }
        assert!(saw_nested, "recursion must sometimes take the branch");
    }

    #[test]
    fn union_picks_all_arms() {
        let mut r = rng();
        let u = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
