//! String strategies from a character-class regex subset.
//!
//! A `&'static str` is a [`Strategy`] producing `String`s matching the
//! pattern. Supported syntax — exactly what this workspace's tests use:
//! literal characters, character classes `[a-z0-9;{}…]` with ranges and
//! `\n`-style escapes, and counted repetition `{m}` / `{m,n}` plus the
//! common `?`, `*` (capped), `+` (capped) quantifiers. Anything else
//! (alternation, groups, negated classes, anchors) panics loudly rather
//! than silently generating wrong data.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive character ranges a single atom can produce.
#[derive(Debug, Clone)]
struct CharSet {
    ranges: Vec<(char, char)>,
}

impl CharSet {
    fn single(c: char) -> Self {
        CharSet {
            ranges: vec![(c, c)],
        }
    }

    fn size(&self) -> u64 {
        self.ranges
            .iter()
            .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
            .sum()
    }

    fn pick(&self, rng: &mut TestRng) -> char {
        let mut offset = rng.below(self.size());
        for &(lo, hi) in &self.ranges {
            let span = hi as u64 - lo as u64 + 1;
            if offset < span {
                return char::from_u32(lo as u32 + offset as u32)
                    .expect("char ranges stay in scalar-value space");
            }
            offset -= span;
        }
        unreachable!("offset drawn below total size")
    }
}

/// One atom plus its repetition bounds.
#[derive(Debug, Clone)]
struct Piece {
    set: CharSet,
    min: u32,
    max: u32,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other, // \\  \]  \-  \. …: the character itself
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => {
                if chars.peek() == Some(&'^') {
                    panic!("negated classes unsupported in the proptest stub: {pattern}");
                }
                let mut items = Vec::new();
                loop {
                    let item = match chars.next() {
                        None => panic!("unterminated class in {pattern}"),
                        Some(']') => break,
                        Some('\\') => unescape(
                            chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling escape in {pattern}")),
                        ),
                        Some(other) => other,
                    };
                    // `a-z` range when '-' is not the closing item.
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next(); // the '-'
                        match ahead.peek() {
                            Some(']') | None => items.push((item, item)),
                            Some(_) => {
                                chars.next();
                                let hi = match chars.next() {
                                    Some('\\') => unescape(chars.next().unwrap()),
                                    Some(h) => h,
                                    None => panic!("unterminated range in {pattern}"),
                                };
                                assert!(item <= hi, "inverted range in {pattern}");
                                items.push((item, hi));
                            }
                        }
                    } else {
                        items.push((item, item));
                    }
                }
                assert!(!items.is_empty(), "empty class in {pattern}");
                CharSet { ranges: items }
            }
            '\\' => CharSet::single(unescape(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern}")),
            )),
            '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported regex syntax `{c}` in the proptest stub: {pattern}")
            }
            other => CharSet::single(other),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut digits = String::new();
                let mut min = None;
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(',') => {
                            min = Some(
                                digits
                                    .parse::<u32>()
                                    .unwrap_or_else(|_| panic!("bad repetition in {pattern}")),
                            );
                            digits.clear();
                        }
                        Some(d) if d.is_ascii_digit() => digits.push(d),
                        _ => panic!("bad repetition in {pattern}"),
                    }
                }
                let hi = digits
                    .parse::<u32>()
                    .unwrap_or_else(|_| panic!("bad repetition in {pattern}"));
                match min {
                    Some(lo) => (lo, hi),
                    None => (hi, hi),
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted repetition in {pattern}");
        pieces.push(Piece { set, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(self) {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
            for _ in 0..n {
                out.push(piece.set.pick(rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(case: u32) -> TestRng {
        TestRng::deterministic("string::tests", case)
    }

    #[test]
    fn class_with_counted_repetition() {
        let mut r = rng(0);
        for _ in 0..200 {
            let s = "[a-z][a-zA-Z0-9]{0,6}".generate(&mut r);
            assert!((1..=7).contains(&s.len()), "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn printable_ascii_plus_newline() {
        let mut r = rng(1);
        let mut saw_newline = false;
        for _ in 0..300 {
            let s = "[ -~\n]{0,200}".generate(&mut r);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
            saw_newline |= s.contains('\n');
        }
        assert!(saw_newline);
    }

    #[test]
    fn punctuation_class_literals() {
        let mut r = rng(2);
        let allowed = "abcdefghijklmnopqrstuvwxyz{}();<>=&|!.,0123456789 \n";
        for _ in 0..100 {
            let s = "[a-z{}();<>=&|!.,0-9 \n]{0,200}".generate(&mut r);
            assert!(s.chars().all(|c| allowed.contains(c)), "{s:?}");
        }
    }

    #[test]
    fn literals_and_simple_quantifiers() {
        let mut r = rng(3);
        assert_eq!("abc".generate(&mut r), "abc");
        for _ in 0..50 {
            let s = "ab?c+".generate(&mut r);
            assert!(s.starts_with('a'));
            assert!(s
                .trim_start_matches('a')
                .trim_start_matches('b')
                .chars()
                .all(|c| c == 'c'));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn groups_panic() {
        "(ab)+".generate(&mut rng(4));
    }
}
