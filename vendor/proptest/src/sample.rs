//! Sampling strategies (`proptest::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice from a fixed (nonempty) list.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select() needs a nonempty list");
    Select { items }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.index(self.items.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_items() {
        let mut rng = TestRng::deterministic("sample::tests", 0);
        let s = select(vec!["+", "-", "*"]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
