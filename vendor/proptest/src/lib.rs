//! Offline API-subset stub of `proptest`.
//!
//! Implements the exact surface this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, range and tuple strategies, a character-class
//! regex-subset string strategy, [`collection::vec`], [`option::of`],
//! [`sample::select`], [`strategy::Just`], the `proptest!` /
//! `prop_oneof!` / `prop_assert!` / `prop_assert_eq!` macros, and
//! [`test_runner::ProptestConfig`].
//!
//! Deliberate simplifications versus the real crate: inputs are drawn
//! from a *deterministic* per-(test, case) RNG so CI is reproducible,
//! and failing cases are reported by panic without shrinking.

pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a `proptest!` test module needs.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Assert inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice between same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that draws `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$_meta:meta])*
     fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}
