//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `Option<T>`: `None` a quarter of the time, like the real crate's
/// default weighting.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::deterministic("option::tests", 0);
        let s = of(0u32..10);
        let mut none = 0;
        let mut some = 0;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                None => none += 1,
                Some(v) => {
                    assert!(v < 10);
                    some += 1;
                }
            }
        }
        assert!(none > 0 && some > 0, "none={none} some={some}");
    }
}
