//! Test configuration and the deterministic per-case RNG.

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of input cases drawn per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Default config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic generator: seeded from the test path and case index so
/// every run (and every CI machine) sees the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one (test, case) pair.
    pub fn deterministic(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64 bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform index into a nonempty slice length.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from an empty set");
        self.below(len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::deterministic("mod::test", 3);
        let mut b = TestRng::deterministic("mod::test", 3);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn cases_differ() {
        let mut a = TestRng::deterministic("mod::test", 0);
        let mut b = TestRng::deterministic("mod::test", 1);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn config_defaults() {
        assert_eq!(ProptestConfig::default().cases, 32);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
