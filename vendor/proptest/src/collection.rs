//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// `Vec<T>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_cover_the_range() {
        let mut rng = TestRng::deterministic("collection::tests", 0);
        let s = vec(0u32..5, 0..4);
        let mut lens = [false; 4];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 4);
            lens[v.len()] = true;
        }
        assert!(lens.iter().all(|&b| b), "{lens:?}");
        let exact = vec(0u32..5, 2..=2).generate(&mut rng);
        assert_eq!(exact.len(), 2);
    }

    #[test]
    fn nested_vec() {
        let mut rng = TestRng::deterministic("collection::tests", 1);
        let s = vec(vec(-1.0f64..1.0, 2..=2), 0..10);
        let v = s.generate(&mut rng);
        assert!(v.iter().all(|inner| inner.len() == 2));
    }
}
