//! Offline API-subset stub of the `rand` crate.
//!
//! This build environment has no network access to a crate registry, so
//! the workspace vendors the exact surface it uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over half-open
//! numeric ranges. The generator is xoshiro256**, which is also what the
//! real `SmallRng` uses on 64-bit targets; the *stream* differs from the
//! real crate (callers here only rely on determinism, not on specific
//! values).

use std::ops::Range;

/// Sources of randomness: the low-level 64-bit interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation.
pub trait Rng: RngCore {
    /// A uniform value in `range` (half-open).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (via SplitMix64, like the real crate).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draw one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo draw; the tiny bias is irrelevant for the
                // workload generation this stub serves.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i32, i64, u32, u64, usize);

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0..10.0).to_bits(),
                b.gen_range(0.0..10.0).to_bits()
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1 << 60)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1 << 60)).collect();
        assert_ne!(va, vb);
    }
}
