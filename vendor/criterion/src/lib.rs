//! Offline API-subset stub of the `criterion` benchmark harness.
//!
//! Implements the surface the workspace's nine bench targets use —
//! groups, `sample_size`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple warm-up + median-of-samples wall clock, printed one line per
//! benchmark; no statistics, plotting, or CLI parsing.

use std::fmt::Display;
use std::time::Instant;

/// Prevent the optimizer from eliding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's conventional display.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    nanos: Vec<u64>,
}

impl Bencher {
    /// Run `f` repeatedly, recording per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, unmeasured
        self.nanos.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.nanos.push(t0.elapsed().as_nanos() as u64);
        }
        self.nanos.sort_unstable();
    }

    fn median_nanos(&self) -> u64 {
        if self.nanos.is_empty() {
            0
        } else {
            self.nanos[self.nanos.len() / 2]
        }
    }
}

fn report(group: &str, id: &str, b: &Bencher) {
    let med = b.median_nanos();
    let human = if med >= 1_000_000_000 {
        format!("{:.3} s", med as f64 / 1e9)
    } else if med >= 1_000_000 {
        format!("{:.3} ms", med as f64 / 1e6)
    } else if med >= 1_000 {
        format!("{:.3} µs", med as f64 / 1e3)
    } else {
        format!("{med} ns")
    };
    if group.is_empty() {
        println!("{id:<40} median {human} ({} samples)", b.nanos.len());
    } else {
        println!(
            "{group}/{id:<32} median {human} ({} samples)",
            b.nanos.len()
        );
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            nanos: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &b);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            nanos: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b);
        self
    }

    /// End the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 {
            20
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: if self.sample_size == 0 {
                20
            } else {
                self.sample_size
            },
            nanos: Vec::new(),
        };
        f(&mut b);
        report("", &id.to_string(), &b);
        self
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        let mut ran = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        // 5 measured + 1 warm-up.
        assert_eq!(ran, 6);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("tick", 8).to_string(), "tick/8");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
