//! The full wire, end to end: a sharded virtual world served over
//! **real TCP**, with concurrent client threads that declare interest,
//! decode per-tick binary deltas, and stream validated input intents
//! back — socket client → `NetListener` → `DistSim` stripes → delta
//! frame back.
//!
//! ```sh
//! cargo run -p sgl-examples --release --bin mmo_sockets [players] [ticks] [clients]
//! ```
//!
//! The world is the `mmo_shard` overworld. Four full clients each run
//! on their own thread against a loopback `NetListener`; one of them
//! also plays: it spawns a stationary pet via a `spawn` intent, nudges
//! its hp every few frames via `set` intents, and despawns it near the
//! end. When `clients > 4` the remaining sessions are spectators that
//! subscribe the same four windows cyclically, decode every frame, and
//! keep only their latest mirror — the CI soak runs 256 of them to
//! exercise the sharded readiness transport under a real connection
//! storm. The binary verifies, on a 1-node and a 4-node cluster, that
//! after every one of ≥ 100 ticks each client's replica equals the
//! authoritative subscribed region value for value, that every intent
//! was validated and applied, and reports the wire traffic in both
//! directions. The playing client also interrogates the live listener
//! with a `MSG_STATS` request mid-run and the reply (the `net.*`
//! metrics dump) is asserted on.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use sgl::{ClassId, EntityId, InterestSpec, Simulation, Value};
use sgl_dist::{DistConfig, DistSim};
use sgl_net::{ClientEvent, Intent, ListenerConfig, NetClient, NetListener};
use sgl_storage::FxHashMap;

use sgl_examples::MMO_WORLD as WORLD;

/// A subscribed region's rows: `(entity, values in schema order)`.
type Region = Vec<(EntityId, Vec<Value>)>;

/// One client thread's record of a frame it applied: the server tick
/// and the full decoded mirror at that tick.
type Snapshot = (u64, Region);

/// What one client thread hands back when the server closes the wire.
struct ClientRun {
    session: u32,
    snapshots: Vec<Snapshot>,
    pet: Option<EntityId>,
    /// The server's `MSG_STATS` metrics dump, if this client asked.
    stats: Option<String>,
}

fn mirror_of(client: &NetClient, class: ClassId) -> Region {
    let mut rows: Region = client
        .replica()
        .class_mirror(class)
        .iter()
        .map(|(&id, values)| (id, values.clone()))
        .collect();
    rows.sort_unstable_by_key(|(id, _)| *id);
    rows
}

/// The client thread: receive until the server hangs up; client 0 also
/// plays through intents.
fn client_thread(
    addr: std::net::SocketAddr,
    catalog: sgl::Catalog,
    spec: InterestSpec,
    class: ClassId,
    // `Some(x)`: this client plays, spawning its pet at `x`.
    pet_x: Option<f64>,
    tx: mpsc::Sender<ClientRun>,
) {
    let mut client = NetClient::connect(addr, catalog, &spec).expect("handshake");
    let schema_cols = {
        let schema = &client.replica().catalog().class(class).state;
        (
            schema.index_of("x").unwrap() as u16,
            schema.index_of("heading").unwrap() as u16,
            schema.index_of("hp").unwrap() as u16,
        )
    };
    let (x_col, heading_col, hp_col) = schema_cols;
    let mut run = ClientRun {
        session: client.session().0,
        snapshots: Vec::new(),
        pet: None,
        stats: None,
    };
    let mut frames = 0u64;
    loop {
        match client.recv() {
            Ok(ClientEvent::Frame(_)) => {
                frames += 1;
                run.snapshots
                    .push((client.tick(), mirror_of(&client, class)));
                if let Some(pet_x) = pet_x {
                    if frames == 40 {
                        // Interrogate the live server over the wire; the
                        // metrics dump arrives as a Stats event behind
                        // the next tick's frame.
                        client.send_stats_request().ok();
                    }
                    if frames == 5 {
                        // A stationary pet inside every window's overlap.
                        client
                            .send(vec![Intent::Spawn {
                                req: 1,
                                class,
                                values: vec![
                                    (x_col, Value::Number(pet_x)),
                                    (heading_col, Value::Number(0.0)),
                                ],
                            }])
                            .ok();
                    }
                    if let Some(id) = run.pet {
                        if frames.is_multiple_of(4) && frames < 60 {
                            client
                                .send(vec![Intent::Set {
                                    class,
                                    id,
                                    col: hp_col,
                                    value: Value::Number(50.0 + (frames % 40) as f64),
                                }])
                                .ok();
                        }
                        if frames == 60 {
                            client.send(vec![Intent::Despawn { class, id }]).ok();
                        }
                    }
                }
            }
            Ok(ClientEvent::Spawned(_, id)) => run.pet = Some(id),
            Ok(ClientEvent::Stats(text)) => run.stats = Some(text),
            Err(_) => break, // server closed the wire: the run is over
        }
    }
    tx.send(run).expect("main thread collects");
}

/// What a spectator thread hands back: it decodes every frame but
/// keeps only the newest mirror, so a 256-session storm stays cheap.
struct SpectatorRun {
    session: u32,
    frames: u64,
    last: Option<Snapshot>,
}

/// The spectator thread: receive until the server hangs up, retaining
/// only the latest decoded snapshot.
fn spectator_thread(
    addr: std::net::SocketAddr,
    catalog: sgl::Catalog,
    spec: InterestSpec,
    class: ClassId,
    tx: mpsc::Sender<SpectatorRun>,
) {
    let mut client = NetClient::connect(addr, catalog, &spec).expect("spectator handshake");
    let mut run = SpectatorRun {
        session: client.session().0,
        frames: 0,
        last: None,
    };
    loop {
        match client.recv() {
            Ok(ClientEvent::Frame(_)) => {
                run.frames += 1;
                run.last = Some((client.tick(), mirror_of(&client, class)));
            }
            Ok(_) => {}
            Err(_) => break,
        }
    }
    tx.send(run).expect("main thread collects spectators");
}

struct RunReport {
    frames: u64,
    delta_bytes: u64,
    input_msgs: u64,
    inputs_applied: u64,
    inputs_rejected: u64,
    checks: u64,
    /// Lines in the `MSG_STATS` metrics dump a client fetched mid-run.
    stats_lines: u64,
}

fn run(players: usize, ticks: usize, shards: usize, span: f64, clients: usize) -> RunReport {
    let game = Simulation::builder()
        .source(WORLD)
        .build()
        .expect("world compiles")
        .game()
        .clone();
    let mut cluster = DistSim::new(game, DistConfig::new(shards, "x", (0.0, span), 15.0))
        .expect("cluster config");

    let mut seed = 0x50C7_E75A_u64 | 1;
    let mut rnd = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..players {
        let heading = if rnd() < 0.5 { -1.0 } else { 1.0 };
        cluster
            .spawn(
                "Player",
                &[
                    ("x", Value::Number(rnd() * span)),
                    ("y", Value::Number(rnd() * span / 4.0)),
                    ("heading", Value::Number(heading)),
                ],
            )
            .unwrap();
    }

    let catalog = cluster.game().catalog.clone();
    let class = catalog.class_by_name("Player").unwrap().id;
    let mut listener = NetListener::bind_with_config(
        "127.0.0.1:0",
        catalog.clone(),
        ListenerConfig {
            max_pending: clients + 64,
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = listener.local_addr().unwrap();

    // Four windows, all containing the pet at x = span/2; the second
    // straddles the 2-stripe seam on the 4-node run.
    let windows = [(0.05, 0.60), (0.40, 0.60), (0.15, 0.95), (0.00, 1.00)];
    let (tx, rx) = mpsc::channel();
    let (spec_tx, spec_rx) = mpsc::channel();
    let mut handles = Vec::new();
    for (i, (a, b)) in windows.iter().enumerate() {
        let spec = InterestSpec::classes(&["Player"], "x", a * span, b * span);
        let catalog = catalog.clone();
        let tx = tx.clone();
        let pet_x = (i == 0).then_some(span * 0.5);
        handles.push(std::thread::spawn(move || {
            client_thread(addr, catalog, spec, class, pet_x, tx)
        }));
    }
    drop(tx);
    // Spectators cycle through the same four windows; connecting them
    // all at once is the connection storm the sharded transport must
    // absorb (`max_pending` above is sized for it).
    for i in 0..clients.saturating_sub(windows.len()) {
        let (a, b) = windows[i % windows.len()];
        let spec = InterestSpec::classes(&["Player"], "x", a * span, b * span);
        let catalog = catalog.clone();
        let tx = spec_tx.clone();
        handles.push(std::thread::spawn(move || {
            spectator_thread(addr, catalog, spec, class, tx)
        }));
    }
    drop(spec_tx);

    // Wait until every client handshook, then run the tick loop.
    let deadline = Instant::now() + Duration::from_secs(30);
    while listener.session_count() < clients {
        listener.accept_pending().expect("accept");
        assert!(Instant::now() < deadline, "clients failed to connect");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Every session's interest is one of the four windows; resolve
    // which, so authoritative regions are computed once per (window,
    // tick) instead of per session.
    let window_of: FxHashMap<u32, usize> = listener
        .sessions()
        .iter()
        .map(|&sid| {
            let spec = listener.session_interest(sid).unwrap();
            let w = windows
                .iter()
                .position(|(a, b)| {
                    (a * span - spec.lo).abs() < 1e-9 && (b * span - spec.hi).abs() < 1e-9
                })
                .expect("session interest matches a window");
            (sid.0, w)
        })
        .collect();

    let mut report = RunReport {
        frames: 0,
        delta_bytes: 0,
        input_msgs: 0,
        inputs_applied: 0,
        inputs_rejected: 0,
        checks: 0,
        stats_lines: 0,
    };
    // Per (window, tick): the authoritative region the frame captured.
    let mut expected: FxHashMap<(usize, u64), Region> = FxHashMap::default();
    // Intents travel on a real wire, so the loop runs `ticks` ticks and
    // then up to a bounded grace until the pet's despawn has landed
    // (the playing client sends it after its 60th frame; its arrival
    // time depends on thread scheduling, not the server's tick count).
    let mut t = 0usize;
    let mut saw_pet = false;
    loop {
        listener.accept_pending().expect("accept");
        listener.drain_inputs(&mut cluster);
        cluster.step();
        listener.pump_frames(&cluster);
        let stats = listener.last_stats();
        report.frames += stats.frames;
        report.delta_bytes += stats.client_traffic.bytes;
        report.input_msgs += stats.inputs.msgs;
        report.inputs_applied += stats.inputs_applied;
        report.inputs_rejected += stats.inputs_rejected;
        let tick = cluster.node_world(0).tick();
        for (w, (a, b)) in windows.iter().enumerate() {
            let (lo, hi) = (a * span, b * span);
            let mut rows = Vec::new();
            for k in 0..shards {
                let world = cluster.node_world(k);
                let table = world.table(class);
                let col = table.schema().index_of("x").unwrap();
                let xs = table.column(col).f64();
                for (row, &id) in table.ids().iter().enumerate() {
                    if (lo..=hi).contains(&xs[row]) && !world.is_ghost(class, id) {
                        let values = (0..table.schema().len())
                            .map(|ci| table.column(ci).get(row))
                            .collect();
                        rows.push((id, values));
                    }
                }
            }
            rows.sort_unstable_by_key(|(id, _)| *id);
            expected.insert((w, tick), rows);
        }
        // Give client threads breathing room so frames interleave with
        // real concurrency rather than pure batching.
        if tick.is_multiple_of(16) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let any_owned = listener
            .sessions()
            .iter()
            .any(|&s| listener.owned(s).is_some_and(|o| !o.is_empty()));
        saw_pet |= any_owned;
        t += 1;
        if (t >= ticks && saw_pet && !any_owned) || t >= ticks + 300 {
            break;
        }
    }
    // Bleed any backlog, then close the wire: clients drain and exit.
    listener.flush();
    std::thread::sleep(Duration::from_millis(20));
    drop(listener);

    let mut runs: Vec<ClientRun> = Vec::new();
    while let Ok(r) = rx.recv() {
        runs.push(r);
    }
    let mut spectators: Vec<SpectatorRun> = Vec::new();
    while let Ok(r) = spec_rx.recv() {
        spectators.push(r);
    }
    for h in handles {
        h.join().expect("client thread");
    }
    assert_eq!(runs.len(), windows.len(), "every client reported back");
    assert_eq!(
        spectators.len(),
        clients - windows.len(),
        "every spectator reported back"
    );

    let mut pet_despawned = false;
    for r in &runs {
        assert!(
            r.snapshots.len() >= 100,
            "session {} verified only {} ticks",
            r.session,
            r.snapshots.len()
        );
        let w = window_of[&r.session];
        for (tick, mirror) in &r.snapshots {
            let want = expected
                .get(&(w, *tick))
                .unwrap_or_else(|| panic!("no authoritative region for tick {tick}"));
            assert_eq!(
                mirror, want,
                "session {} diverged from the server at tick {tick}",
                r.session
            );
            report.checks += mirror.len() as u64;
        }
        if let Some(id) = r.pet {
            pet_despawned = cluster.class_of(id).is_none();
        }
    }
    // Spectators kept only their newest mirror; it must still be
    // value-identical to the authoritative region at that tick.
    for s in &spectators {
        assert!(
            s.frames >= 100,
            "spectator {} decoded only {} frames",
            s.session,
            s.frames
        );
        let (tick, mirror) = s.last.as_ref().expect("spectator saw at least one frame");
        let want = expected
            .get(&(window_of[&s.session], *tick))
            .unwrap_or_else(|| panic!("no authoritative region for spectator tick {tick}"));
        assert_eq!(
            mirror, want,
            "spectator {} diverged from the server at tick {tick}",
            s.session
        );
        report.checks += mirror.len() as u64;
    }
    assert!(report.inputs_applied > 10, "intent stream was applied");
    assert_eq!(report.inputs_rejected, 0, "all intents were valid");
    assert!(pet_despawned, "the pet's despawn intent took effect");
    // The playing client interrogated the live server mid-run: its
    // MSG_STATS reply must carry the transport's metric lines.
    let stats = runs
        .iter()
        .find_map(|r| r.stats.as_deref())
        .expect("one client requested MSG_STATS and got a reply");
    assert!(
        stats.contains("counter net.frames") && stats.contains("hist net.pump_nanos"),
        "the metrics dump names the net.* metrics:\n{stats}"
    );
    report.stats_lines = stats.lines().count() as u64;
    report
}

fn main() {
    let mut args = std::env::args().skip(1);
    let players: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(600);
    let ticks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(120);
    let clients: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    assert!(ticks >= 100, "the identity check must cover ≥ 100 ticks");
    assert!(clients >= 4, "the four full clients always run");
    let span = (players as f64 * 50.0).sqrt().max(200.0) * 4.0;

    println!("{players} players, {ticks} ticks, {clients} TCP clients over loopback\n");
    println!(
        "| cluster | frames | delta KB | input msgs | applied | rejected | checks | stats lines |"
    );
    println!(
        "|---------|--------|----------|------------|---------|----------|--------|-------------|"
    );
    for shards in [1usize, 4] {
        let r = run(players, ticks, shards, span, clients);
        println!(
            "| {shards} node{} | {} | {:.1} | {} | {} | {} | {} | {} |",
            if shards == 1 { " " } else { "s" },
            r.frames,
            r.delta_bytes as f64 / 1024.0,
            r.input_msgs,
            r.inputs_applied,
            r.inputs_rejected,
            r.checks,
            r.stats_lines,
        );
    }
    println!("\nevery replica stayed value-identical to the server over real sockets");
    println!("(MSG_STATS interrogated the live listener mid-run on both clusters)");
}
