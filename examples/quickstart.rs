//! Quickstart: the paper's Figure 1 class and Figure 2 accum-loop,
//! end to end.
//!
//! ```sh
//! cargo run -p sgl-examples --bin quickstart
//! ```

use sgl::{Simulation, Value};

use sgl_examples::QUICKSTART_WORLD as SOURCE;

fn main() {
    // Compile SGL → relational algebra; build the engine. The effect
    // trace is enabled so we can show the §3.3 per-NPC debugger.
    let mut sim = Simulation::builder()
        .source(SOURCE)
        .effect_trace(true)
        .build()
        .unwrap_or_else(|e| panic!("compile error:\n{e}"));

    println!("== SGL quickstart: Fig. 1 class + Fig. 2 accum-loop ==\n");
    println!(
        "generated schema: {}",
        sim.game().catalog.class_by_name("Unit").unwrap().state
    );

    // A little line of units; neighbours within range 2.
    let mut ids = Vec::new();
    for i in 0..8 {
        let id = sim
            .spawn("Unit", &[("x", Value::Number(i as f64))])
            .unwrap();
        ids.push(id);
    }

    for tick in 0..5 {
        let stats = sim.tick();
        println!(
            "tick {tick}: effect {}µs, join pairs {}, method {}",
            stats.effect_nanos / 1000,
            stats.total_pairs(),
            stats
                .joins
                .first()
                .map(|j| j.method.name())
                .unwrap_or_default()
        );
    }

    println!("\nper-unit neighbour counts (`seen`):");
    for &id in &ids {
        let x = sim.get(id, "x").unwrap();
        let seen = sim.get(id, "seen").unwrap();
        println!(
            "  {id}: x = {x:>5.2}, seen = {seen}",
            x = x.as_number().unwrap()
        );
    }

    // §3.3 debugging: inspect one NPC's state and its incoming effects.
    let probe = ids[3];
    println!("\nstate of {probe} at the tick boundary:");
    for (name, v) in sim.state_of(probe).unwrap() {
        println!("  {name} = {v}");
    }
    println!("effects assigned to {probe} last tick:");
    for line in sim.effects_of(probe) {
        println!("  {line}");
    }

    // §3.3 checkpoints: snapshot, run, restore, verify.
    let snap = sim.checkpoint();
    let before = sim.get(probe, "x").unwrap();
    sim.run(10);
    sim.restore(&snap).unwrap();
    assert_eq!(sim.get(probe, "x").unwrap(), before);
    println!("\ncheckpoint/restore verified ({} bytes)", snap.len());
}
