//! Boids: flocking with `avg` effect combinators (paper Fig. 1's
//! `vx : avg` pattern) — watch alignment emerge.
//!
//! ```sh
//! cargo run -p sgl-examples --bin boids_flock --release
//! ```

use sgl::ExecMode;
use sgl_workloads::boids::{alignment, build};

fn main() {
    let mut sim = build(300, 50.0, 42, ExecMode::Compiled);
    println!("== boids: 300 birds, avg-combined alignment/cohesion ==\n");
    for round in 0..12 {
        let a = alignment(&sim);
        println!(
            "tick {:>3}: flock alignment {:>5.1}%",
            round * 10,
            a * 100.0
        );
        sim.run(10);
    }
    let final_alignment = alignment(&sim);
    println!("\nfinal alignment: {:.1}%", final_alignment * 100.0);
    assert!(final_alignment > 0.3, "flock should have aligned");
}
