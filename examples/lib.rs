//! Shared helpers for the example binaries (each `[[bin]]` in this
//! package is a standalone demonstration of the public `sgl` API).
