#![forbid(unsafe_code)]
//! Shared helpers for the example binaries (each `[[bin]]` in this
//! package is a standalone demonstration of the public `sgl` API).
//!
//! The SGL sources the examples run live here rather than inside the
//! individual binaries, for two reasons: the three MMO demos share one
//! world (previously triplicated), and [`shipped_sources`] hands every
//! source to the `sgl-check` static analyzer so CI can assert the
//! shipped examples produce zero findings.

/// Figure 1's `Unit` class (completed with an update rule) plus
/// Figure 2's neighbour-counting accum-loop, extended with a small
/// skirmish rule so every Fig. 1 attribute (`player`, `damage`) is
/// exercised. Run by `quickstart`.
pub const QUICKSTART_WORLD: &str = r#"
class Unit {
state:
  number player = 0;
  number x = 0;
  number y = 0;
  number health = 100;
  number range = 2;
  number seen = 0;
effects:
  number vx : avg;
  number vy : avg;
  number damage : sum;
  number near : sum;
update:
  health = health - damage;
  seen = near;
  x = x + vx;
  y = y + vy;

script count_neighbors {
  accum number cnt with sum over Unit u from Unit {
    if (u.x >= x - range && u.x <= x + range &&
        u.y >= y - range && u.y <= y + range) {
      cnt <- 1;
    }
  } in {
    near <- cnt;
  }
}

script skirmish {
  accum number foes with sum over Unit u from Unit {
    if (u.player != player &&
        u.x >= x - range && u.x <= x + range &&
        u.y >= y - range && u.y <= y + range) {
      u.damage <- 1;
      foes <- 1;
    }
  } in {
    if (foes > 0) {
      vy <- 0.5;
    }
  }
}

script wander {
  vx <- 0.25;
}
}
"#;

/// A besieged castle: guards patrol (multi-tick intention), wolves roam
/// and bite, wounded guards interrupt their patrol to heal (§3.2
/// `restart`). Run by `debugger`.
pub const CASTLE_WORLD: &str = r#"
class Guard {
state:
  number x = 0;
  number y = 0;
  number hp = 100;
  number atStep = 0;
  number heals = 0;
effects:
  number step : max = 0;
  number bite : sum;
  number cured : sum;
update:
  hp = hp - bite + cured;
  atStep = step;
  heals = heals + cured;
script patrol {
  step <- 1;
  waitNextTick;
  step <- 2;
  waitNextTick;
  step <- 3;
}
when (hp < 60) { cured <- 50; } restart patrol;
}

class Wolf {
state:
  number x = 0;
  number y = 0;
  number vx = 3;
  number hunger = 15;
effects:
  number dx : avg;
update:
  x = x + dx;
script hunt {
  dx <- vx;
  accum number bitten with sum over Guard g from Guard {
    if (g.x >= x - 6 && g.x <= x + 6 &&
        g.y >= y - 6 && g.y <= y + 6) {
      g.bite <- hunger;
      bitten <- 1;
    }
  } in {
    if (bitten > 0) {
      dx <- 0 - vx;
    }
  }
}
}
"#;

/// Adventurers walk to the nearest loose item and pick it up with the
/// paper's set-insert effect; containers are `set<Item>` attributes.
/// Run by `rpg_inventory`.
pub const RPG_WORLD: &str = r#"
class Item {
state:
  number x = 0;
  number y = 0;
  number weight = 1;
  bool loose = true;
effects:
  bool taken : or;
update:
  loose = loose && !taken;
}

class Adventurer {
state:
  number x = 0;
  number y = 0;
  number load = 0;
  set<Item> bag;
effects:
  number vx : avg;
  number vy : avg;
  set<Item> itemsAcquired : union;
  number weightGain : sum;
update:
  x = x + vx;
  y = y + vy;
  bag = union(bag, itemsAcquired);
  load = load + weightGain;

script loot {
  accum ref<Item> closest with min over Item i from Item {
    if (i.loose && i.x >= x - 50 && i.x <= x + 50 &&
        i.y >= y - 50 && i.y <= y + 50) {
      closest <- i;
    }
  } in {
    if (closest != null) {
      let d = dist(x, y, closest.x, closest.y);
      if (d < 1) {
        itemsAcquired <= closest;
        weightGain <- closest.weight;
        closest.taken <- true;
      } else {
        vx <- (closest.x - x) / max(d, 1);
        vy <- (closest.y - y) / max(d, 1);
      }
    }
  }
}
}
"#;

/// The MMO overworld shared by `mmo_shard`, `mmo_clients` and
/// `mmo_sockets`: players roam, crowd-avoid, and skirmish within a
/// constant radius-15 neighbourhood — exactly the halo width the
/// sharded deployments configure, so the analyzer classifies the roam
/// rule halo-safe.
pub const MMO_WORLD: &str = r#"
class Player {
state:
  number x = 0;
  number y = 0;
  number hp = 100;
  number kills = 0;
  number heading = 1;
effects:
  number pull : avg;
  number hit : sum;
  number slain : sum;
update:
  x = x + heading + pull;
  hp = min(hp - hit + 1, 100);
  kills = kills + slain;
script roam {
  accum number crowd with sum over Player p from Player {
    if (p.x >= x - 15 && p.x <= x + 15 &&
        p.y >= y - 15 && p.y <= y + 15) {
      crowd <- 1;
      if (p.x >= x - 2 && p.x <= x + 2 && p.hp < hp) {
        p.hit <- 3;
        slain <- 0.01;
      }
    }
  } in {
    if (crowd > 8) {
      pull <- 0 - heading;
    }
  }
}
}
"#;

/// Every SGL source the example binaries ship, `(name, source)` — the
/// population the zero-findings CI sweep runs `sgl-check` over.
pub fn shipped_sources() -> Vec<(&'static str, &'static str)> {
    vec![
        ("quickstart", QUICKSTART_WORLD),
        ("castle", CASTLE_WORLD),
        ("rpg", RPG_WORLD),
        ("mmo", MMO_WORLD),
    ]
}
