//! RPG inventory: `ref<…>` and `set<…>` types (§2.1).
//!
//! "SGL now supports reference and (unordered) set data types … This
//! advance in SGL is especially appealing to the developers of
//! role-playing games (RPGs) who have a lot of container objects that
//! force them to construct very complicated schemas."
//!
//! Adventurers walk to the nearest loose item and pick it up with the
//! paper's set-insert effect (`itemsAcquired <= i`); containers are just
//! `set<Item>` attributes — no join tables, no schema gymnastics.
//!
//! ```sh
//! cargo run -p sgl-examples --bin rpg_inventory
//! ```

use sgl::{Simulation, Value};

use sgl_examples::RPG_WORLD as SOURCE;

fn main() {
    let mut sim = Simulation::builder()
        .source(SOURCE)
        .build()
        .unwrap_or_else(|e| panic!("compile error:\n{e}"));

    println!("== RPG inventory: set<Item> containers, `<=` pickup ==\n");

    // Scatter items, drop two adventurers at the corners.
    let mut items = Vec::new();
    for k in 0..10 {
        items.push(
            sim.spawn(
                "Item",
                &[
                    ("x", Value::Number((k * 7 % 23) as f64)),
                    ("y", Value::Number((k * 11 % 19) as f64)),
                    ("weight", Value::Number(1.0 + (k % 3) as f64)),
                ],
            )
            .unwrap(),
        );
    }
    let a = sim
        .spawn(
            "Adventurer",
            &[("x", Value::Number(0.0)), ("y", Value::Number(0.0))],
        )
        .unwrap();
    let b = sim
        .spawn(
            "Adventurer",
            &[("x", Value::Number(22.0)), ("y", Value::Number(18.0))],
        )
        .unwrap();

    for tick in 0..80 {
        sim.tick();
        if tick % 10 == 9 {
            let loose = sim
                .world()
                .table(sim.world().class_id("Item").unwrap())
                .column_by_name("loose")
                .unwrap()
                .bool()
                .iter()
                .filter(|&&l| l)
                .count();
            println!(
                "tick {:>3}: items loose {:>2}, bag(A) = {}, bag(B) = {}",
                tick + 1,
                loose,
                sim.get(a, "bag").unwrap(),
                sim.get(b, "bag").unwrap(),
            );
            if loose == 0 {
                break;
            }
        }
    }

    let bag_a = sim.get(a, "bag").unwrap();
    let bag_b = sim.get(b, "bag").unwrap();
    let load_a = sim.get(a, "load").unwrap();
    let load_b = sim.get(b, "load").unwrap();
    println!("\nfinal: A carries {bag_a} (load {load_a}), B carries {bag_b} (load {load_b})");

    // No item may be in two bags: `taken : or` + the loose guard make
    // pickup exclusive even when both adventurers reach it in the same
    // tick — but ⊕ alone would let both insert it. Check honestly:
    let sa = bag_a.as_set().unwrap();
    let sb = bag_b.as_set().unwrap();
    let both: Vec<_> = sa.iter().filter(|id| sb.contains(*id)).collect();
    if both.is_empty() {
        println!("no item ended up in two bags");
    } else {
        println!(
            "{} item(s) in both bags — the §3.1 duping hazard with plain ⊕ effects! \
             (make pickup atomic to fix)",
            both.len()
        );
    }
}
