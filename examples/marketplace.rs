//! Marketplace: the §3.1 duping bug and its transactional fix, live.
//!
//! Runs the same contended-economy scenario under all three exchange
//! implementations and prints the audit — the paper's argument in one
//! table.
//!
//! ```sh
//! cargo run -p sgl-examples --bin marketplace
//! ```

use sgl_workloads::market::{build, run_and_audit, MarketMode, MarketParams};

fn main() {
    println!("== marketplace: 60 buyers, 8 items, 5 robbers, 12 ticks ==\n");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>14}",
        "mode", "transfers", "duping", "negatives", "gold drift"
    );
    for mode in [MarketMode::Naive, MarketMode::MultiTick, MarketMode::Atomic] {
        let params = MarketParams {
            buyers: 60,
            items: 8,
            robbers: 5,
            mode,
            ..MarketParams::default()
        };
        let price = params.price;
        let mut market = build(&params);
        let audit = run_and_audit(&mut market, 12, price);
        println!(
            "{:<14} {:>10} {:>10} {:>12} {:>14.1}",
            mode.name(),
            audit.transfers,
            audit.duping,
            audit.negative_balances,
            audit.gold_conservation_error,
        );
    }
    println!(
        "\nduping   = payments made minus items received (> 0 ⇒ buyers charged without goods)"
    );
    println!("negatives = traders ending below zero (constraint violations)");
    println!("\nThe atomic mode's zeros are §3.1's point: the engine admits only");
    println!("the subset of transactions that respects every constraint.");
}
