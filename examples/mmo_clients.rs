//! Client replication over a sharded virtual world: spectators declare
//! an area of interest and receive per-tick binary deltas; their
//! decoded replicas must stay **value-identical** to the server's view
//! of the subscribed region, with entities streaming in and out as they
//! cross the interest boundary.
//!
//! ```sh
//! cargo run -p sgl-examples --release --bin mmo_clients [players] [ticks]
//! ```
//!
//! The world is the `mmo_shard` overworld: players wander, flock and
//! trade blows. Three sessions watch fixed windows of the map while the
//! population drifts through them. The binary verifies, on a 1-node and
//! a 4-node cluster, that after every one of ≥ 100 ticks each replica
//! equals the authoritative region bit for bit, and reports the delta
//! bandwidth against what shipping full snapshots would have cost.

use sgl::{ClientReplica, InterestSpec, ReplicationServer, Simulation, Value};
use sgl_dist::{DistConfig, DistSim};
use sgl_storage::{ClassId, EntityId};

use sgl_examples::MMO_WORLD as WORLD;

/// The authoritative subscribed region, read straight off the cluster:
/// owned (non-ghost) players with `lo ≤ x ≤ hi`, full rows.
fn server_region(
    cluster: &DistSim,
    class: ClassId,
    spec: &InterestSpec,
) -> Vec<(EntityId, Vec<Value>)> {
    let mut rows = Vec::new();
    for k in 0..cluster.config().nodes {
        let world = cluster.node_world(k);
        let table = world.table(class);
        let col = table.schema().index_of(&spec.attr).unwrap();
        let xs = table.column(col).f64();
        for (row, &id) in table.ids().iter().enumerate() {
            if spec.contains(xs[row]) && !world.is_ghost(class, id) {
                let values = (0..table.schema().len())
                    .map(|ci| table.column(ci).get(row))
                    .collect();
                rows.push((id, values));
            }
        }
    }
    rows.sort_unstable_by_key(|(id, _)| *id);
    rows
}

/// Wire cost of shipping the region as a full snapshot (what a naive
/// protocol would send every tick).
fn snapshot_bytes(region: &[(EntityId, Vec<Value>)]) -> u64 {
    region
        .iter()
        .map(|(_, vs)| {
            8 + vs
                .iter()
                .map(sgl_engine::codec::value_wire_bytes)
                .sum::<u64>()
        })
        .sum()
}

struct RunReport {
    enters: u64,
    exits: u64,
    delta_bytes: u64,
    snapshot_bytes: u64,
    fanout_msgs: u64,
    checks: u64,
}

fn run(players: usize, ticks: usize, shards: usize, span: f64) -> RunReport {
    let game = Simulation::builder()
        .source(WORLD)
        .build()
        .expect("world compiles")
        .game()
        .clone();
    let mut cluster = DistSim::new(game, DistConfig::new(shards, "x", (0.0, span), 15.0))
        .expect("cluster config");

    let mut seed = 0x00C1_1E27_u64 | 1;
    let mut rnd = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..players {
        let heading = if rnd() < 0.5 { -1.0 } else { 1.0 };
        cluster
            .spawn(
                "Player",
                &[
                    ("x", Value::Number(rnd() * span)),
                    ("y", Value::Number(rnd() * span / 4.0)),
                    ("heading", Value::Number(heading)),
                ],
            )
            .unwrap();
    }

    // Three spectators. The middle window deliberately straddles the
    // seam between stripes on the 4-node run.
    let catalog = cluster.game().catalog.clone();
    let class = catalog.class_by_name("Player").unwrap().id;
    let windows = [
        (0.10, 0.22),
        (0.45, 0.55), // straddles the 2-stripe seam at 0.5 · span
        (0.70, 0.95),
    ];
    let mut server = ReplicationServer::new(catalog.clone());
    let mut sessions = Vec::new();
    for (a, b) in windows {
        let spec = InterestSpec::classes(&["Player"], "x", a * span, b * span);
        let sid = server.attach(&spec).unwrap();
        sessions.push((sid, spec, ClientReplica::new(catalog.clone())));
    }

    let mut report = RunReport {
        enters: 0,
        exits: 0,
        delta_bytes: 0,
        snapshot_bytes: 0,
        fanout_msgs: 0,
        checks: 0,
    };
    for _ in 0..ticks {
        cluster.step();
        let frames = server.poll(&cluster);
        report.fanout_msgs += server.last_stats().fanout.msgs;
        for (sid, frame) in frames {
            let (_, spec, replica) = sessions
                .iter_mut()
                .find(|(s, _, _)| *s == sid)
                .expect("frame for an attached session");
            let summary = replica.apply(&frame).expect("frame decodes");
            report.enters += summary.enters as u64;
            report.exits += summary.exits as u64;
            report.delta_bytes += frame.len() as u64;

            // The acceptance check: the decoded replica equals the
            // server's subscribed region, value for value.
            let region = server_region(&cluster, class, spec);
            report.snapshot_bytes += snapshot_bytes(&region);
            assert_eq!(
                replica.population(),
                region.len(),
                "replica population diverged"
            );
            for (id, values) in &region {
                assert_eq!(
                    replica.row(class, *id),
                    Some(values.as_slice()),
                    "replica of {id:?} diverged from the server view"
                );
                report.checks += values.len() as u64;
            }
        }
    }
    assert!(report.enters > 0, "no entity ever entered a window");
    assert!(report.exits > 0, "no entity ever left a window");
    assert_eq!(cluster.node_world(0).tick(), ticks as u64);
    report
}

fn main() {
    let mut args = std::env::args().skip(1);
    let players: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1500);
    let ticks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(120);
    assert!(ticks >= 100, "the identity check must cover ≥ 100 ticks");
    let span = (players as f64 * 50.0).sqrt().max(200.0) * 4.0;

    println!("{players} players, {ticks} ticks, 3 interest windows\n");
    println!("| cluster | enters | exits | delta KB | snapshot KB | saved | merge msgs | checks |");
    println!("|---------|--------|-------|----------|-------------|-------|------------|--------|");
    for shards in [1usize, 4] {
        let r = run(players, ticks, shards, span);
        println!(
            "| {shards} node{} | {} | {} | {:.1} | {:.1} | {:.0}% | {} | {} |",
            if shards == 1 { " " } else { "s" },
            r.enters,
            r.exits,
            r.delta_bytes as f64 / 1024.0,
            r.snapshot_bytes as f64 / 1024.0,
            (1.0 - r.delta_bytes as f64 / r.snapshot_bytes as f64) * 100.0,
            r.fanout_msgs,
            r.checks,
        );
    }
    println!("\nevery replica stayed value-identical to the server's subscribed region");
}
