//! An interactive tick debugger — the "development environment with
//! debugger" the paper promises in §5, built on the §3.3 hooks:
//! tick-boundary state inspection, per-NPC effect traces, resumable
//! checkpoints, watchpoints, and live query-plan observation.
//!
//! ```sh
//! cargo run -p sgl-examples --bin debugger            # REPL on stdin
//! cargo run -p sgl-examples --bin debugger -- --demo  # scripted session
//! ```
//!
//! Commands:
//!
//! ```text
//! tick [n]            run n ticks (default 1) and print phase timings
//! ls [limit]          list entities with their class
//! inspect <id>        all state attributes of one entity
//! effects <id>        raw ⊕ assignments targeting <id> last tick
//! watch <class> <attr> <op> <value>
//!                     report entities matching the predicate after
//!                     every tick (op: < <= > >= == !=)
//! unwatch <k>         drop watch number k
//! plan                join methods chosen by the adaptive optimizer
//! stats               last tick's phase breakdown
//! checkpoint <name>   snapshot the world
//! restore <name>      roll back to a snapshot
//! help | quit
//! ```

use std::collections::HashMap;
use std::io::{self, BufRead, Write};

use sgl::{EntityId, Simulation, Value};

use sgl_examples::CASTLE_WORLD as SOURCE;

/// One registered watchpoint: `class.attr op value`.
struct Watch {
    class: String,
    attr: String,
    op: String,
    value: f64,
}

impl Watch {
    fn matches(&self, v: f64) -> bool {
        match self.op.as_str() {
            "<" => v < self.value,
            "<=" => v <= self.value,
            ">" => v > self.value,
            ">=" => v >= self.value,
            "==" => v == self.value,
            "!=" => v != self.value,
            _ => false,
        }
    }
}

struct Debugger {
    sim: Simulation,
    watches: Vec<Watch>,
    snapshots: HashMap<String, Vec<u8>>,
}

impl Debugger {
    fn new() -> Debugger {
        let mut sim = Simulation::builder()
            .source(SOURCE)
            .effect_trace(true) // per-NPC effect inspection (§3.3)
            .build()
            .expect("demo game compiles");
        // Castle wall: guards at x = 40..56; wolves approaching from 0.
        for i in 0..8 {
            sim.spawn(
                "Guard",
                &[
                    ("x", Value::Number(40.0 + 2.0 * i as f64)),
                    ("y", Value::Number((i % 4) as f64)),
                ],
            )
            .unwrap();
        }
        for i in 0..3 {
            sim.spawn(
                "Wolf",
                &[
                    ("x", Value::Number(28.0 + 4.0 * i as f64)),
                    ("y", Value::Number((i % 4) as f64)),
                ],
            )
            .unwrap();
        }
        Debugger {
            sim,
            watches: Vec::new(),
            snapshots: HashMap::new(),
        }
    }

    fn command(&mut self, line: &str) -> bool {
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            [] => {}
            ["quit"] | ["exit"] | ["q"] => return false,
            ["help"] | ["h"] => print_help(),
            ["tick"] => self.tick(1),
            ["tick", n] => self.tick(n.parse().unwrap_or(1)),
            ["ls"] => self.list(usize::MAX),
            ["ls", n] => self.list(n.parse().unwrap_or(usize::MAX)),
            ["inspect", id] => self.inspect(id),
            ["effects", id] => self.effects(id),
            ["watch", class, attr, op, value] => match value.parse::<f64>() {
                Ok(v) => {
                    self.watches.push(Watch {
                        class: class.to_string(),
                        attr: attr.to_string(),
                        op: op.to_string(),
                        value: v,
                    });
                    println!(
                        "watch #{}: {class}.{attr} {op} {value}",
                        self.watches.len() - 1
                    );
                }
                Err(_) => println!("watch: value must be a number"),
            },
            ["unwatch", k] => match k.parse::<usize>() {
                Ok(k) if k < self.watches.len() => {
                    self.watches.remove(k);
                    println!("removed watch #{k}");
                }
                _ => println!("no such watch"),
            },
            ["plan"] => self.plan(),
            ["stats"] => self.stats(),
            ["checkpoint", name] => {
                let bytes = self.sim.checkpoint();
                println!("checkpoint `{name}`: {} bytes", bytes.len());
                self.snapshots.insert(name.to_string(), bytes.to_vec());
            }
            ["restore", name] => match self.snapshots.get(*name) {
                Some(bytes) => {
                    self.sim.restore(bytes).expect("checkpoint restores");
                    println!("restored `{name}` (tick {})", self.sim.world().tick());
                }
                None => println!("no checkpoint `{name}`"),
            },
            other => println!("unknown command {other:?} — try `help`"),
        }
        true
    }

    fn tick(&mut self, n: usize) {
        for _ in 0..n {
            self.sim.tick();
            let s = self.sim.last_stats();
            println!(
                "tick {:>4}: effect {} + combine {} + update {} + reactive {} | {} effects, {} interrupts",
                s.tick,
                us(s.effect_nanos),
                us(s.combine_nanos),
                us(s.update_nanos),
                us(s.reactive_nanos),
                s.effects_emitted,
                s.interrupts,
            );
            self.fire_watches();
        }
    }

    fn fire_watches(&self) {
        let world = self.sim.world();
        for (k, w) in self.watches.iter().enumerate() {
            let Ok(class) = world.class_id(&w.class) else {
                continue;
            };
            let table = world.table(class);
            let Some(col) = table.column_by_name(&w.attr) else {
                continue;
            };
            let hits: Vec<String> = table
                .ids()
                .iter()
                .zip(col.f64())
                .filter(|(_, &v)| w.matches(v))
                .map(|(id, v)| format!("{id}={v}"))
                .collect();
            if !hits.is_empty() {
                println!(
                    "  watch #{k} {}.{} {} {}: {}",
                    w.class,
                    w.attr,
                    w.op,
                    w.value,
                    hits.join(" ")
                );
            }
        }
    }

    fn list(&self, limit: usize) {
        let world = self.sim.world();
        for cdef in world.catalog().classes() {
            let table = world.table(cdef.id);
            // Hidden pc columns are compiler-internal; skip pure-internal
            // classes the same way.
            println!("{} ({} live):", cdef.name, table.len());
            for id in table.ids().iter().take(limit) {
                println!("  {id}");
            }
        }
    }

    fn inspect(&self, raw: &str) {
        let Some(id) = parse_id(raw) else {
            println!("inspect: bad id `{raw}`");
            return;
        };
        match self.sim.state_of(id) {
            Some(state) => {
                for (name, value) in state {
                    println!("  {name} = {value}");
                }
            }
            None => println!("no entity {raw}"),
        }
    }

    fn effects(&self, raw: &str) {
        let Some(id) = parse_id(raw) else {
            println!("effects: bad id `{raw}`");
            return;
        };
        let lines = self.sim.effects_of(id);
        if lines.is_empty() {
            println!("  (no effect assignments targeted {raw} last tick)");
        }
        for line in lines {
            println!("  {line}");
        }
    }

    fn plan(&self) {
        let joins = &self.sim.last_stats().joins;
        if joins.is_empty() {
            println!("no accum joins last tick (run `tick` first)");
            return;
        }
        let classes = self.sim.world().catalog().classes();
        println!("| class | script | seg.step | method | pairs | time | switched |");
        for j in joins {
            println!(
                "| {} | {} | {}.{} | {} | {} | {} | {} |",
                classes[j.class as usize].name,
                j.script,
                j.segment,
                j.step,
                j.method.name(),
                j.pairs,
                us(j.nanos),
                if j.switched { "yes" } else { "" }
            );
        }
    }

    fn stats(&self) {
        let s = self.sim.last_stats();
        println!("tick {}", s.tick);
        println!("  effect phase   {}", us(s.effect_nanos));
        println!("  ⊕ combine      {}", us(s.combine_nanos));
        println!("  update phase   {}", us(s.update_nanos));
        println!("  reactive phase {}", us(s.reactive_nanos));
        println!("  effects folded {}", s.effects_emitted);
        println!("  interrupts     {}", s.interrupts);
        println!(
            "  transactions   {} issued / {} committed",
            s.txn.issued, s.txn.committed
        );
    }
}

fn parse_id(raw: &str) -> Option<EntityId> {
    raw.trim_start_matches('#')
        .parse::<u64>()
        .ok()
        .map(EntityId)
}

fn us(nanos: u64) -> String {
    if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{}µs", nanos / 1_000)
    }
}

fn print_help() {
    println!(
        "tick [n] | ls [limit] | inspect <id> | effects <id> |\n\
         watch <class> <attr> <op> <v> | unwatch <k> | plan | stats |\n\
         checkpoint <name> | restore <name> | quit"
    );
}

/// The canned session used by `--demo` (and by CI, where stdin is not a
/// terminal).
const DEMO: &[&str] = &[
    "ls",
    "watch Guard hp < 60",
    "checkpoint start",
    "tick 3",
    "inspect 1",
    "effects 1",
    "plan",
    "tick 4",
    "stats",
    "restore start",
    "inspect 1",
    "quit",
];

fn main() {
    let demo = std::env::args().any(|a| a == "--demo");
    let mut dbg = Debugger::new();
    println!("SGL debugger — `help` for commands. 8 guards patrol, 3 wolves close in.");
    if demo {
        for line in DEMO {
            println!("(sgl-dbg) {line}");
            if !dbg.command(line) {
                break;
            }
        }
        return;
    }
    let stdin = io::stdin();
    loop {
        print!("(sgl-dbg) ");
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                if !dbg.command(&line) {
                    break;
                }
            }
        }
    }
}
