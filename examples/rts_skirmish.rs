//! RTS skirmish: two armies march, engage and fight to the end.
//!
//! ```sh
//! cargo run -p sgl-examples --bin rts_skirmish --release
//! ```

use sgl_workloads::rts::{army_sizes, build, RtsParams};

fn main() {
    let params = RtsParams {
        units_per_side: 300,
        arena: 150.0,
        threads: 4,
        ..RtsParams::default()
    };
    let mut sim = build(&params);
    println!(
        "== RTS skirmish: {} vs {} units, {} executor ==\n",
        params.units_per_side,
        params.units_per_side,
        sim.executor_name()
    );

    let mut tick = 0usize;
    loop {
        sim.tick();
        tick += 1;
        let (p0, p1) = army_sizes(&sim);
        if tick.is_multiple_of(20) || p0 == 0 || p1 == 0 {
            let s = sim.last_stats();
            println!(
                "tick {tick:>4}: army0 {p0:>4}  army1 {p1:>4}  | tick {:>6}µs, join {} ({} pairs)",
                s.total_nanos() / 1000,
                s.joins.first().map(|j| j.method.name()).unwrap_or_default(),
                s.total_pairs(),
            );
        }
        if p0 == 0 || p1 == 0 || tick > 2000 {
            let winner = if p0 > p1 { 0 } else { 1 };
            println!("\narmy {winner} wins after {tick} ticks\n");
            // Phase wall times and the hottest rules, attributed by the
            // telemetry plane (no hand-rolled timing).
            println!("{}", sim.explain_tick());
            let p = &sim.last_stats().parallel;
            println!(
                "worker pool ({} threads): {} fan-outs, {} chunks ({} claimed by \
                 workers), {} lanes busy at peak",
                params.threads, p.pool_runs, p.chunks, p.chunks_stolen, p.workers_used,
            );
            break;
        }
    }
}
