//! Validate an `SGL_TRACE` JSONL file against the documented schema.
//!
//! ```sh
//! SGL_TRACE=/tmp/trace.jsonl cargo run -p sgl-examples --release --bin mmo_shard
//! cargo run -p sgl-examples --release --bin trace_check /tmp/trace.jsonl
//! ```
//!
//! Every line must be one complete telemetry record with exactly the
//! fields [`sgl_obs::validate_trace_line`] documents — unknown fields,
//! missing fields, and type mismatches all fail. Exits nonzero on the
//! first invalid line or on an empty trace, so CI can gate on it.

use std::io::{BufRead, BufReader};

fn main() {
    let path = std::env::args()
        .nth(1)
        .or_else(|| std::env::var(sgl_obs::ENV_TRACE).ok())
        .unwrap_or_else(|| {
            eprintln!("usage: trace_check <trace.jsonl>  (or set SGL_TRACE)");
            std::process::exit(2);
        });
    let file = std::fs::File::open(&path).unwrap_or_else(|e| {
        eprintln!("trace_check: cannot open {path}: {e}");
        std::process::exit(2);
    });
    let mut records = 0usize;
    let mut slow = 0usize;
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("trace_check: read error at line {}: {e}", i + 1);
            std::process::exit(1);
        });
        if line.trim().is_empty() {
            continue;
        }
        match sgl_obs::validate_trace_line(&line) {
            Ok(()) => {
                records += 1;
                if line.contains("\"type\":\"slow_tick\"") {
                    slow += 1;
                }
            }
            Err(e) => {
                eprintln!("trace_check: line {} invalid: {e}\n{line}", i + 1);
                std::process::exit(1);
            }
        }
    }
    if records == 0 {
        eprintln!("trace_check: {path} holds no telemetry records");
        std::process::exit(1);
    }
    println!("{path}: {records} valid records ({slow} slow-tick)");
}
