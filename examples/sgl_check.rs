//! `sgl-check`: the static analyzer as a CLI / CI gate.
//!
//! ```sh
//! # Lint one or more .sgl files:
//! cargo run -p sgl-examples --bin sgl-check -- game.sgl
//!
//! # CI gate over every shipped example/workload source — any finding
//! # (warnings included) fails the run:
//! cargo run -p sgl-examples --bin sgl-check -- --deny warnings --builtin
//! ```
//!
//! Each file is compiled, then analyzed: effect-conflict (`SGL001`),
//! partition-safety (`SGL002`/`SGL003`/`SGL004`, when the file carries
//! a `// sgl-check: nodes=… partition=… range=lo..hi halo=…` directive
//! describing the cluster layout to check against), and dead code
//! (`SGL010`–`SGL013`; interest windows via
//! `// sgl-check: interest=attr:lo..hi`). Diagnostics render through
//! the same span machinery as compile errors, so this tool and the
//! runtime (`SimulationBuilder`, `DistSim::new`) print identical text.
//!
//! Exit status: 2 on usage/IO errors, 1 if any file has findings at or
//! above the deny level (errors by default; everything with
//! `--deny warnings`), 0 otherwise.

use std::process::ExitCode;

use sgl_analysis::{analyze, analyze_cluster, lint_interest, AnalysisReport, Directives};

struct Options {
    deny_warnings: bool,
    show_sets: bool,
    builtin: bool,
    files: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sgl-check [--deny warnings] [--sets] [--builtin] [FILE.sgl ...]\n\
         \n\
         --deny warnings  exit nonzero on any finding, warnings included\n\
         --sets           print each rule's read/write sets\n\
         --builtin        also sweep every shipped example/workload source"
    );
    ExitCode::from(2)
}

fn parse_args() -> Option<Options> {
    let mut opts = Options {
        deny_warnings: false,
        show_sets: false,
        builtin: false,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => match args.next().as_deref() {
                Some("warnings") => opts.deny_warnings = true,
                _ => return None,
            },
            "--sets" => opts.show_sets = true,
            "--builtin" => opts.builtin = true,
            "--help" | "-h" => return None,
            _ if arg.starts_with('-') => return None,
            _ => opts.files.push(arg),
        }
    }
    if opts.files.is_empty() && !opts.builtin {
        return None;
    }
    Some(opts)
}

/// Outcome of checking one source: the findings rendered against it,
/// plus whether any reached the deny level.
struct Checked {
    rendered: String,
    findings: usize,
    errors: bool,
    report: Option<AnalysisReport>,
}

fn check_source(src: &str) -> Checked {
    let directives: Directives = sgl_analysis::parse_directives(src);
    let checked = match sgl_frontend::check(src) {
        Ok(c) => c,
        Err(diags) => {
            return Checked {
                findings: diags.items.len(),
                rendered: diags.render(src),
                errors: true,
                report: None,
            }
        }
    };
    let game = match sgl_compiler::compile(checked) {
        Ok(g) => g,
        Err(diags) => {
            return Checked {
                findings: diags.items.len(),
                rendered: diags.render(src),
                errors: true,
                report: None,
            }
        }
    };
    let mut report = match &directives.cluster {
        Some(spec) => analyze_cluster(&game, spec),
        None => analyze(&game),
    };
    for (attr, lo, hi) in &directives.interests {
        report.diags.extend(lint_interest(&game, attr, *lo, *hi));
    }
    Checked {
        findings: report.diags.items.len(),
        errors: report.diags.has_errors(),
        rendered: report.diags.render(src),
        report: Some(report),
    }
}

fn main() -> ExitCode {
    let Some(opts) = parse_args() else {
        return usage();
    };

    let mut sources: Vec<(String, String)> = Vec::new();
    for path in &opts.files {
        match std::fs::read_to_string(path) {
            Ok(src) => sources.push((path.clone(), src)),
            Err(e) => {
                eprintln!("sgl-check: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if opts.builtin {
        for (name, src) in sgl_workloads::shipped_sources() {
            sources.push((format!("workload:{name}"), src));
        }
        for (name, src) in sgl_examples::shipped_sources() {
            sources.push((format!("example:{name}"), src.to_string()));
        }
    }

    let mut failed = false;
    for (name, src) in &sources {
        let checked = check_source(src);
        if checked.findings == 0 {
            println!("{name}: ok");
        } else {
            println!("{name}: {} finding(s)", checked.findings);
            for line in checked.rendered.lines() {
                println!("  {line}");
            }
        }
        if let (true, Some(report)) = (opts.show_sets, &checked.report) {
            print!("{}", report.render_sets());
        }
        failed |= checked.errors || (opts.deny_warnings && checked.findings > 0);
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
