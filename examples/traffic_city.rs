//! Traffic simulation: vehicles circulating city blocks with
//! car-following (the §4.2 "large-scale simulation" workload).
//!
//! ```sh
//! cargo run -p sgl-examples --bin traffic_city --release
//! ```

use sgl_workloads::traffic::{build, mean_progress, TrafficParams};

fn main() {
    let params = TrafficParams {
        vehicles: 20_000,
        blocks: 16,
        threads: 4,
        ..TrafficParams::default()
    };
    let mut sim = build(&params);
    println!(
        "== traffic: {} vehicles on a {}×{} block city ==\n",
        params.vehicles, params.blocks, params.blocks
    );

    for round in 1..=10 {
        let t0 = std::time::Instant::now();
        sim.run(10);
        let dt = t0.elapsed().as_secs_f64();
        let s = sim.last_stats();
        println!(
            "after {:>3} ticks: {:>6.1} ticks/s, mean laps {:>5.2}, join {} ({} pairs)",
            round * 10,
            10.0 / dt,
            mean_progress(&sim),
            s.joins.first().map(|j| j.method.name()).unwrap_or_default(),
            s.total_pairs(),
        );
    }
    println!(
        "\nworld memory: {:.1} MB for {} vehicles",
        sim.world().memory_bytes() as f64 / 1e6,
        sim.population()
    );
}
