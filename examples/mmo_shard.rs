//! A sharded virtual world — §4.2's "running SGL on a shared-nothing
//! cluster is also highly relevant for massively multiplayer online
//! games and virtual worlds", scaled to a laptop by simulating the
//! cluster in-process.
//!
//! ```sh
//! cargo run -p sgl-examples --release --bin mmo_shard [players] [shards]
//! ```
//!
//! A strip-shaped overworld is range-partitioned into zone shards.
//! Players wander, flock toward nearby players (crowds form), and trade
//! blows at close range; every interaction stays within a 15-unit
//! radius, so ghost replication across shard seams preserves exact
//! single-server semantics — which this binary verifies at the end.
//!
//! Set `SGL_TRACE=path` to append one JSONL telemetry record per tick;
//! both the cluster (`"source":"dist"`) and the single-server
//! reference (`"source":"engine"`) write to the same file.

use sgl::{Simulation, Value};
use sgl_dist::{DistConfig, DistSim};

use sgl_examples::MMO_WORLD as WORLD;

fn main() {
    let mut args = std::env::args().skip(1);
    let players: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4000);
    let shards: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let span = (players as f64 * 50.0).sqrt().max(200.0) * 4.0;

    println!(
        "overworld: {span:.0} × {:.0}, {players} players, {shards} zone shards\n",
        span / 4.0
    );

    // The sharded deployment.
    let game = Simulation::builder()
        .source(WORLD)
        .build()
        .expect("world compiles")
        .game()
        .clone();
    // Two pool workers per shard process, with the effect-phase fan-out
    // threshold lowered so even small test populations exercise the
    // parallel path — the end-of-run exactness check then doubles as a
    // parallel-vs-single-server bit-identity gate in CI.
    let mut dist_cfg = DistConfig::new(shards, "x", (0.0, span), 15.0).threads(2);
    dist_cfg.exec.parallel_threshold = 64;
    let mut cluster = DistSim::new(game, dist_cfg).expect("cluster config");

    // A single-server reference for the exactness check.
    let mut single = Simulation::builder().source(WORLD).build().unwrap();

    let mut seed = 0x5EED_5EEDu64 | 1;
    let mut rnd = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut ids = Vec::with_capacity(players);
    for _ in 0..players {
        let x = rnd() * span;
        let y = rnd() * span / 4.0;
        let heading = if rnd() < 0.5 { -1.0 } else { 1.0 };
        let vals = [
            ("x", Value::Number(x)),
            ("y", Value::Number(y)),
            ("heading", Value::Number(heading)),
        ];
        let id = cluster.spawn("Player", &vals).unwrap();
        let id2 = single.spawn("Player", &vals).unwrap();
        assert_eq!(id, id2);
        ids.push(id);
    }

    println!(
        "| tick | ghosts | enter/upd/exit | KB moved | migrations | max shard compute | sim tick |"
    );
    println!(
        "|------|--------|----------------|----------|------------|--------------------|----------|"
    );
    let mut churn = 0u64; // enters + exits after warm-up
    let mut halo = 0u64; // resident halo size after warm-up
    for t in 0..12 {
        cluster.step();
        single.tick();
        let s = cluster.last_stats();
        if t >= 2 {
            churn += s.ghost_enters.msgs + s.ghost_exits.msgs;
            halo += s.ghosts as u64;
        }
        if t % 2 == 1 {
            println!(
                "| {} | {} | {}/{}/{} | {:.1} | {} | {:.2} ms | {:.2} ms |",
                t + 1,
                s.ghosts,
                s.ghost_enters.msgs,
                s.ghost_updates.msgs,
                s.ghost_exits.msgs,
                s.total_bytes() as f64 / 1024.0,
                s.migrations,
                *s.node_compute_nanos.iter().max().unwrap_or(&0) as f64 / 1e6,
                s.simulated_seconds * 1e3,
            );
        }
    }
    // Halo regression gate (runs in CI): the incremental exchange must
    // ship enters/exits proportional to seam churn — players move ≤2
    // per tick against a 30-wide halo band — never re-replicate the
    // resident halo wholesale.
    if shards > 1 && halo > 0 {
        assert!(
            churn * 2 < halo,
            "halo churn ({churn}) must stay well below the resident halo ({halo}): \
             the exchange is re-replicating instead of diffing"
        );
    }

    // Exactness: every player's every attribute matches the single
    // server bit for bit (integer-valued arithmetic throughout).
    let mut checked = 0usize;
    for &id in &ids {
        for attr in ["x", "hp", "kills"] {
            let a = cluster.get(id, attr).unwrap();
            let b = single.get(id, attr).unwrap();
            assert_eq!(a, b, "{attr} of {id} diverged");
            checked += 1;
        }
    }
    println!("\nexactness: {checked} attribute values identical to the single-server run");
    let shard_pops: Vec<usize> = (0..shards).map(|k| cluster.node_population(k)).collect();
    println!("final shard populations: {shard_pops:?}\n");
    // Phase wall times and the hottest rules across all shards,
    // attributed by the telemetry plane (no hand-rolled timing).
    println!("{}", cluster.explain_tick());
    let p = &cluster.last_stats().parallel;
    println!(
        "shared pool, last tick: {} fan-outs, {} chunks ({} claimed by workers), \
         {} lanes busy at peak",
        p.pool_runs, p.chunks, p.chunks_stolen, p.workers_used
    );
}
