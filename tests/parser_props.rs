//! Property tests on the frontend: generated programs survive the
//! print → parse round trip, and the lexer never panics on arbitrary
//! input.

use proptest::prelude::*;
use sgl_ast::pretty;
use sgl_frontend::{lexer, parse};

/// Generate identifier-ish names that avoid reserved words.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9]{0,6}".prop_map(|s| format!("v{s}"))
}

fn number_literal() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u32..1000).prop_map(|n| n.to_string()),
        (0u32..1000, 1u32..100).prop_map(|(a, b)| format!("{a}.{b:02}")),
    ]
}

/// A random arithmetic/comparison expression over the given variables.
fn expr(vars: Vec<String>) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![number_literal(), proptest::sample::select(vars.clone()),];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (
            inner.clone(),
            proptest::sample::select(vec!["+", "-", "*", "/"]),
            inner,
        )
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

/// A random (valid) class: some number state vars, sum effects, a script
/// of guarded effect assignments.
fn class_source() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(ident(), 1..5),
        prop::collection::vec(ident(), 1..4),
    )
        .prop_flat_map(|(mut states, mut effects)| {
            states.sort();
            states.dedup();
            effects.sort();
            effects.dedup();
            effects.retain(|e| !states.contains(e));
            if effects.is_empty() {
                effects.push("vzz".to_string());
            }
            let evars = effects.clone();
            let svars = states.clone();
            let stmts = prop::collection::vec(
                (
                    proptest::sample::select(evars),
                    expr(svars.clone()),
                    prop::option::of(expr(svars)),
                ),
                1..6,
            );
            (Just(states), Just(effects), stmts)
        })
        .prop_flat_map(|(states, effects, stmts)| {
            // Optionally add a multi-tick script plus a `when … restart`
            // handler (§3.2 interrupts) — 0 = none, 1 = bare restart,
            // 2 = named restart.
            (Just(states), Just(effects), Just(stmts), 0u8..3)
        })
        .prop_map(|(states, effects, stmts, restart)| {
            let mut src = String::from("class Gen {\nstate:\n");
            for s in &states {
                src.push_str(&format!("  number {s} = 1;\n"));
            }
            src.push_str("effects:\n");
            for e in &effects {
                src.push_str(&format!("  number {e} : sum;\n"));
            }
            src.push_str("script s {\n");
            for (target, value, guard) in &stmts {
                match guard {
                    Some(g) => {
                        src.push_str(&format!("  if ({g} > 0) {{ {target} <- {value}; }}\n"))
                    }
                    None => src.push_str(&format!("  {target} <- {value};\n")),
                }
            }
            src.push_str("}\n");
            if restart > 0 {
                let e0 = &effects[0];
                let s0 = &states[0];
                src.push_str(&format!(
                    "script walker {{\n  {e0} <- 1;\n  waitNextTick;\n  {e0} <- 2;\n}}\n"
                ));
                match restart {
                    1 => src.push_str(&format!("when ({s0} > 5) restart;\n")),
                    _ => src.push_str(&format!(
                        "when ({s0} > 5) {{ {e0} <- 1; }} restart walker;\n"
                    )),
                }
            }
            src.push_str("}\n");
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_roundtrip(src in class_source()) {
        let p1 = parse(&src).unwrap_or_else(|e| panic!("{}\n{src}", e.render(&src)));
        let printed = pretty::print_program(&p1);
        let p2 = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed:\n{}\n{printed}", e.render(&printed)));
        prop_assert_eq!(printed.clone(), pretty::print_program(&p2));
    }

    #[test]
    fn generated_classes_typecheck_and_compile(src in class_source()) {
        // Valid-by-construction sources must make it through the whole
        // frontend + compiler without diagnostics.
        let sim = sgl::Simulation::builder().source(&src).build();
        prop_assert!(sim.is_ok(), "{src}");
    }

    #[test]
    fn lexer_never_panics(junk in "[ -~\n]{0,200}") {
        // Arbitrary printable ASCII: errors allowed, panics not.
        let _ = lexer::lex(&junk);
    }

    #[test]
    fn parser_never_panics(junk in "[a-z{}();<>=&|!.,0-9 \n]{0,200}") {
        let _ = parse(&junk);
    }
}
