//! Failure injection: the engine must stay sound when entities vanish,
//! references dangle, scripts divide by zero, and worlds are empty or
//! enormous in a single extent.

use sgl::{ExecMode, Simulation, Value};

const REF_GAME: &str = r#"
class U {
state:
  ref<U> target = null;
  number hp = 10;
  number observed = 0;
effects:
  number damage : sum;
  number seen : sum;
update:
  hp = hp - damage;
  observed = observed + seen;
script attack {
  if (target != null) {
    target.damage <- 1;
    seen <- target.hp;
  }
}
}
"#;

#[test]
fn dangling_refs_read_as_zero_and_drop_effects() {
    for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
        let mut sim = Simulation::builder()
            .source(REF_GAME)
            .mode(mode)
            .build()
            .unwrap();
        let victim = sim.spawn("U", &[]).unwrap();
        let attacker = sim.spawn("U", &[("target", Value::Ref(victim))]).unwrap();
        sim.tick();
        assert_eq!(sim.get(victim, "hp").unwrap(), Value::Number(9.0));
        // Kill the victim between ticks: the ref now dangles.
        sim.despawn(victim);
        sim.tick();
        // Reading target.hp through the dangling ref yields 0; the
        // damage effect evaporates instead of corrupting anything.
        let observed = sim.get(attacker, "observed").unwrap().as_number().unwrap();
        assert_eq!(observed, 10.0, "mode {mode:?}: second tick read 0");
        assert!(sim.world().class_of(victim).is_none());
    }
}

#[test]
fn empty_world_ticks_are_noops() {
    let mut sim = Simulation::builder().source(REF_GAME).build().unwrap();
    for _ in 0..5 {
        let stats = sim.tick();
        assert_eq!(stats.effects_emitted, 0);
    }
    assert_eq!(sim.world().tick(), 5);
}

#[test]
fn division_by_zero_is_ieee_not_panic() {
    let src = r#"
class A {
state:
  number x = 0;
  number out = 0;
effects:
  number r : sum;
update:
  out = r;
script s {
  if (x > 0) {
    r <- 1 / x;
  } else {
    r <- 7;
  }
}
}
"#;
    for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
        let mut sim = Simulation::builder()
            .source(src)
            .mode(mode)
            .build()
            .unwrap();
        let id = sim.spawn("A", &[]).unwrap(); // x = 0: guarded branch divides by 0
        sim.tick();
        // The guarded-out division still evaluates vectorized (to ±inf)
        // but only the else branch's emission lands.
        assert_eq!(sim.get(id, "out").unwrap(), Value::Number(7.0));
    }
}

#[test]
fn spawn_despawn_churn_keeps_tables_consistent() {
    let mut sim = Simulation::builder().source(REF_GAME).build().unwrap();
    let mut alive = Vec::new();
    for round in 0..20u64 {
        // Spawn 10, despawn every third survivor.
        for _ in 0..10 {
            alive.push(sim.spawn("U", &[]).unwrap());
        }
        let mut kept = Vec::new();
        for (k, id) in alive.drain(..).enumerate() {
            if k % 3 == round as usize % 3 {
                assert!(sim.despawn(id));
            } else {
                kept.push(id);
            }
        }
        alive = kept;
        sim.tick();
        assert_eq!(sim.population(), alive.len());
        for &id in &alive {
            assert!(sim.get(id, "hp").is_ok());
        }
    }
}

#[test]
fn restore_across_population_changes() {
    let mut sim = Simulation::builder().source(REF_GAME).build().unwrap();
    let a = sim.spawn("U", &[]).unwrap();
    sim.run(2);
    let snap = sim.checkpoint();
    // Mutate heavily after the snapshot.
    for _ in 0..50 {
        sim.spawn("U", &[]).unwrap();
    }
    sim.despawn(a);
    sim.run(3);
    assert_eq!(sim.population(), 50);
    // Restore: the old world returns exactly.
    sim.restore(&snap).unwrap();
    assert_eq!(sim.population(), 1);
    assert!(sim.get(a, "hp").is_ok());
    // Ids allocated after restore do not collide with pre-snapshot ids.
    let fresh = sim.spawn("U", &[]).unwrap();
    assert!(fresh.0 > a.0);
}

#[test]
fn single_entity_self_interaction() {
    // An accum over the extent that contains only the runner itself.
    let src = r#"
class A {
state:
  number x = 0;
  number n = 0;
effects:
  number c : sum;
update:
  n = c;
script s {
  accum number k with sum over A u from A {
    if (u.x >= x - 1 && u.x <= x + 1) { k <- 1; }
  } in {
    c <- k;
  }
}
}
"#;
    for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
        let mut sim = Simulation::builder()
            .source(src)
            .mode(mode)
            .build()
            .unwrap();
        let id = sim.spawn("A", &[]).unwrap();
        sim.tick();
        assert_eq!(sim.get(id, "n").unwrap(), Value::Number(1.0), "{mode:?}");
    }
}

#[test]
fn hot_loop_many_ticks_is_stable() {
    let mut sim = Simulation::builder().source(REF_GAME).build().unwrap();
    let a = sim.spawn("U", &[("hp", Value::Number(1e9))]).unwrap();
    let b = sim
        .spawn(
            "U",
            &[("target", Value::Ref(a)), ("hp", Value::Number(1e9))],
        )
        .unwrap();
    sim.run(500);
    assert_eq!(sim.get(a, "hp").unwrap(), Value::Number(1e9 - 500.0));
    let _ = b;
    assert_eq!(sim.world().tick(), 500);
}
