//! The `sgl-net` TCP transport end-to-end over loopback: a real
//! [`NetListener`] serving concurrent [`NetClient`]s across 100+ ticks
//! on 1-node and 4-node clusters (replicas value-identical to the
//! server's subscribed region every tick), client→server input intents
//! validated and visible in *other* clients' replicas within two ticks,
//! ownership/type/attribute rejection without collateral damage, and
//! hostile wire traffic that must disconnect its session without
//! panicking or corrupting the world.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use sgl::{ClassId, ClientReplica, EntityId, InterestSpec, Simulation, Value};
use sgl_dist::{DistConfig, DistSim};
use sgl_net::transport::{
    self, hello_payload, read_msg, write_msg, MSG_ERROR, MSG_HELLO, MSG_INPUT, PROTOCOL_VERSION,
};
use sgl_net::{
    InputBatch, Intent, IoConfig, ListenerConfig, NetClient, NetConfig, NetError, NetListener,
    ReplicationSource,
};

const GAME: &str = r#"
class Unit {
state:
  number x = 0;
  number dx = 0;
  number hp = 10;
update:
  x = x + dx;
}
"#;

/// The authoritative subscribed region of `class` on any source.
fn region<S: ReplicationSource>(
    src: &S,
    class: ClassId,
    spec: &InterestSpec,
) -> Vec<(EntityId, Vec<Value>)> {
    let mut rows = Vec::new();
    for k in 0..src.shards() {
        let world = src.shard_world(k);
        let table = world.table(class);
        let col = table.schema().index_of(&spec.attr).unwrap();
        let xs = table.column(col).f64();
        for (row, &id) in table.ids().iter().enumerate() {
            if spec.contains(xs[row]) && !world.is_ghost(class, id) {
                let values = (0..table.schema().len())
                    .map(|ci| table.column(ci).get(row))
                    .collect();
                rows.push((id, values));
            }
        }
    }
    rows.sort_unstable_by_key(|(id, _)| *id);
    rows
}

fn assert_identical<S: ReplicationSource>(
    replica: &ClientReplica,
    src: &S,
    class: ClassId,
    spec: &InterestSpec,
) {
    let expected = region(src, class, spec);
    assert_eq!(replica.population(), expected.len(), "population diverged");
    for (id, values) in &expected {
        assert_eq!(
            replica.row(class, *id),
            Some(values.as_slice()),
            "mirror of {id:?} diverged"
        );
    }
}

/// Open `specs.len()` clients against `listener` and complete all
/// handshakes from a single thread (connect + HELLO first, then the
/// server's accept loop, then the blocking WELCOME reads).
fn connect_all(listener: &mut NetListener, specs: &[InterestSpec]) -> Vec<NetClient> {
    let addr = listener.local_addr().unwrap();
    let catalog = listener_catalog(listener);
    let pending: Vec<_> = specs
        .iter()
        .map(|s| NetClient::start_connect(addr, catalog.clone(), s).unwrap())
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while listener.session_count() < specs.len() {
        listener.accept_pending().unwrap();
        assert!(Instant::now() < deadline, "handshakes stalled");
        std::thread::sleep(Duration::from_millis(1));
    }
    pending.into_iter().map(|p| p.finish().unwrap()).collect()
}

/// The catalog a listener's sessions decode against (clients get it out
/// of band in reality; tests read it back off a session-free probe).
fn listener_catalog(listener: &NetListener) -> sgl::Catalog {
    // NetListener does not expose its catalog; the tests thread it in
    // from the simulation instead. This helper exists only to keep the
    // call sites shaped like real deployments.
    listener.catalog().clone()
}

/// Tentpole acceptance: 4 concurrent clients over real TCP, 100+
/// ticks, on a 1-node and a 4-node cluster — every client's replica is
/// value-identical to the server's subscribed region after every tick,
/// and one client's spawn/set/despawn intents round-trip through the
/// cluster into the other clients' replicas within two ticks.
#[test]
fn loopback_replicas_identical_and_inputs_visible() {
    for shards in [1usize, 4] {
        lockstep_run(shards);
    }
}

fn lockstep_run(shards: usize) {
    let game = Simulation::builder()
        .source(GAME)
        .build()
        .unwrap()
        .game()
        .clone();
    let mut sim = DistSim::new(game, DistConfig::new(shards, "x", (0.0, 200.0), 8.0)).unwrap();
    for i in 0..48 {
        let dx = if i % 2 == 0 { 1.0 } else { -1.0 };
        sim.spawn(
            "Unit",
            &[
                ("x", Value::Number(i as f64 * 4.2)),
                ("dx", Value::Number(dx)),
            ],
        )
        .unwrap();
    }
    let catalog = sim.game().catalog.clone();
    let class = catalog.class_by_name("Unit").unwrap().id;
    let schema = &catalog.class(class).state;
    let x_col = schema.index_of("x").unwrap() as u16;
    let dx_col = schema.index_of("dx").unwrap() as u16;
    let hp_col = schema.index_of("hp").unwrap() as u16;

    let mut listener = NetListener::bind("127.0.0.1:0", catalog.clone()).unwrap();
    // Window 1 straddles the 4-node stripe seam at x = 100.
    let specs: Vec<InterestSpec> = [
        "Unit where x in [20, 80]",
        "Unit where x in [60, 140]",
        "Unit where x in [120, 190]",
        "Unit where x in [0, 200]",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();
    let mut clients = connect_all(&mut listener, &specs);
    for (ci, client) in clients.iter().enumerate() {
        assert_eq!(
            listener.session_interest(client.session()),
            Some(&specs[ci]),
            "server resolved the subscription the client declared"
        );
    }

    let mut checked = vec![0usize; clients.len()];
    let mut pet: Option<EntityId> = None;
    let mut hp_applied_tick: Option<u64> = None;
    let mut hp_seen_tick: Option<u64> = None;
    for t in 0..130u64 {
        // Client 0's intents: spawn a stationary pet at x = 70 (inside
        // windows 0, 1 and 3), later bump its hp, finally despawn it.
        if t == 10 {
            clients[0]
                .send(vec![Intent::Spawn {
                    req: 77,
                    class,
                    values: vec![(x_col, Value::Number(70.0)), (dx_col, Value::Number(0.0))],
                }])
                .unwrap();
        }
        if let Some(id) = pet {
            if t == 40 {
                clients[0]
                    .send(vec![Intent::Set {
                        class,
                        id,
                        col: hp_col,
                        value: Value::Number(55.0),
                    }])
                    .unwrap();
            }
            if t == 90 {
                clients[0]
                    .send(vec![Intent::Despawn { class, id }])
                    .unwrap();
            }
        }

        listener.accept_pending().unwrap();
        listener.drain_inputs(&mut sim);
        if let Some(id) = pet {
            if hp_applied_tick.is_none() && sim.get(id, "hp").ok() == Some(Value::Number(55.0)) {
                // Applied before this step; it is part of tick t+1's frame.
                hp_applied_tick = Some(sim.node_world(0).tick() + 1);
            }
        }
        sim.step();
        listener.pump_frames(&sim);

        for (ci, client) in clients.iter_mut().enumerate() {
            client.recv_frame().unwrap();
            for (req, id) in client.take_spawned() {
                assert_eq!((ci, req), (0, 77), "only client 0 spawned");
                pet = Some(id);
            }
            assert_eq!(client.tick(), sim.node_world(0).tick());
            assert_identical(client.replica(), &sim, class, &specs[ci]);
            checked[ci] += 1;
        }
        if let (Some(id), Some(_), None) = (pet, hp_applied_tick, hp_seen_tick) {
            if clients[1].replica().get(class, id, "hp") == Some(Value::Number(55.0)) {
                hp_seen_tick = Some(clients[1].tick());
            }
        }
    }

    assert!(
        checked.iter().all(|&c| c >= 100),
        "every client must be verified over 100+ ticks: {checked:?}"
    );
    let pet = pet.expect("spawn intent acknowledged");
    assert_eq!(sim.class_of(pet), None, "despawn intent took effect");
    let (applied, seen) = (hp_applied_tick.unwrap(), hp_seen_tick.unwrap());
    assert!(
        seen <= applied + 2,
        "client-originated set must reach other replicas within two ticks \
         (applied at {applied}, seen at {seen})"
    );
    let s0 = listener.session_stats(clients[0].session()).unwrap();
    assert_eq!(s0.inputs_applied, 3, "spawn + set + despawn");
    assert_eq!(s0.inputs_rejected, 0);
    // The drifting population must actually exercise enters and exits.
    let s1 = listener.session_stats(clients[1].session()).unwrap();
    assert!(s1.enters > 0 && s1.exits > 0, "window crossings observed");
}

/// Ownership/validation over real sockets: a session writing an entity
/// it doesn't own, an unknown attribute, a type-mismatched value, or an
/// unknown class is rejected and counted — without affecting the world,
/// the offender's connection, or other sessions. A host `grant` makes
/// the same write legal.
#[test]
fn invalid_inputs_are_rejected_without_collateral() {
    let mut sim = Simulation::builder().source(GAME).build().unwrap();
    let catalog = sim.world().catalog().clone();
    let class = sim.world().class_id("Unit").unwrap();
    let hp_col = catalog.class(class).state.index_of("hp").unwrap() as u16;
    let mut listener = NetListener::bind("127.0.0.1:0", catalog.clone()).unwrap();
    let specs: Vec<InterestSpec> = ["Unit where x in [0, 100]", "Unit where x in [0, 100]"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let mut clients = connect_all(&mut listener, &specs);

    let tick = |listener: &mut NetListener, sim: &mut Simulation, clients: &mut [NetClient]| {
        listener.accept_pending().unwrap();
        let report = listener.drain_inputs(sim);
        sim.tick();
        listener.pump_frames(sim);
        for c in clients.iter_mut() {
            c.recv_frame().unwrap();
        }
        report
    };

    // Client 0 spawns its pet.
    clients[0]
        .send(vec![Intent::Spawn {
            req: 1,
            class,
            values: vec![(hp_col, Value::Number(10.0))],
        }])
        .unwrap();
    let report = tick(&mut listener, &mut sim, &mut clients);
    assert_eq!((report.applied, report.rejected), (1, 0));
    let pet = clients[0].take_spawned()[0].1;

    // Client 1 fires every class of invalid intent in one batch.
    let hostile = vec![
        // Not the owner.
        Intent::Set {
            class,
            id: pet,
            col: hp_col,
            value: Value::Number(0.0),
        },
        // Unknown attribute.
        Intent::Set {
            class,
            id: pet,
            col: 99,
            value: Value::Number(0.0),
        },
        // Type mismatch.
        Intent::Set {
            class,
            id: pet,
            col: hp_col,
            value: Value::Bool(true),
        },
        // Unknown class.
        Intent::Spawn {
            req: 2,
            class: ClassId(99),
            values: vec![],
        },
        // Despawn without ownership.
        Intent::Despawn { class, id: pet },
    ];
    clients[1].send(hostile).unwrap();
    let report = tick(&mut listener, &mut sim, &mut clients);
    assert_eq!((report.applied, report.rejected), (0, 5));
    assert_eq!(
        report.disconnects, 0,
        "semantic rejection keeps the session"
    );
    assert_eq!(listener.session_count(), 2);
    assert_eq!(
        sim.get(pet, "hp").unwrap(),
        Value::Number(10.0),
        "rejected writes never touch the world"
    );
    assert_eq!(listener.last_stats().inputs_rejected, 5);
    let s1 = listener.session_stats(clients[1].session()).unwrap();
    assert_eq!((s1.inputs_applied, s1.inputs_rejected), (0, 5));
    assert!(
        clients[1].take_spawned().is_empty(),
        "no ack for a rejected spawn"
    );

    // The same write becomes legal once the host grants ownership.
    assert!(listener.grant(clients[1].session(), pet));
    clients[1]
        .send(vec![Intent::Set {
            class,
            id: pet,
            col: hp_col,
            value: Value::Number(3.0),
        }])
        .unwrap();
    let report = tick(&mut listener, &mut sim, &mut clients);
    assert_eq!((report.applied, report.rejected), (1, 0));
    assert_eq!(sim.get(pet, "hp").unwrap(), Value::Number(3.0));
}

/// Raw-socket hostility: structurally corrupt input frames (bad magic,
/// truncation, hostile counts, spoofed session ids, hostile length
/// prefixes, non-input message kinds) disconnect exactly the offending
/// session — with an ERROR notice, no panic, no world mutation, and no
/// effect on a healthy neighbour. Parametrized over the transport I/O
/// modes: the legacy sweep oracle and the readiness shards (epoll and
/// the poll(2) fallback) must enforce the same protocol.
#[test]
fn malformed_wire_traffic_disconnects_only_the_offender_sweep() {
    malformed_wire_run(IoConfig::sweep());
}

#[cfg(unix)]
#[test]
fn malformed_wire_traffic_disconnects_only_the_offender_epoll() {
    malformed_wire_run(IoConfig::readiness(2));
}

#[cfg(unix)]
#[test]
fn malformed_wire_traffic_disconnects_only_the_offender_poll() {
    malformed_wire_run(IoConfig::poll_fallback(2));
}

fn malformed_wire_run(io: IoConfig) {
    let mut sim = Simulation::builder().source(GAME).build().unwrap();
    sim.spawn("Unit", &[("x", Value::Number(5.0))]).unwrap();
    let catalog = sim.world().catalog().clone();
    let cfg = ListenerConfig {
        io,
        ..ListenerConfig::default()
    };
    let mut listener = NetListener::bind_with_config("127.0.0.1:0", catalog.clone(), cfg).unwrap();
    let addr = listener.local_addr().unwrap();
    let spec: InterestSpec = "Unit where x in [0, 100]".parse().unwrap();
    let mut healthy = connect_all(&mut listener, std::slice::from_ref(&spec));

    // A well-formed batch to truncate and corrupt.
    let batch = InputBatch {
        session: 0, // patched per connection below
        tick: 0,
        intents: vec![Intent::Despawn {
            class: ClassId(0),
            id: EntityId(1),
        }],
    };
    let good = sgl_net::input::encode(&batch).to_vec();

    type Attack = Box<dyn Fn(u32) -> Vec<Vec<u8>>>;
    let attacks: Vec<(&str, Attack)> = vec![
        ("bad magic", {
            let good = good.clone();
            Box::new(move |_| {
                let mut b = good.clone();
                b[0] ^= 0xFF;
                vec![transport::frame_msg(MSG_INPUT, &b)]
            })
        }),
        ("truncated", {
            let good = good.clone();
            Box::new(move |_| vec![transport::frame_msg(MSG_INPUT, &good[..good.len() - 3])])
        }),
        ("hostile count", {
            Box::new(move |_| {
                let mut b = b"SGI1".to_vec();
                b.extend_from_slice(&0u32.to_le_bytes());
                b.extend_from_slice(&0u64.to_le_bytes());
                b.extend_from_slice(&u32::MAX.to_le_bytes());
                vec![transport::frame_msg(MSG_INPUT, &b)]
            })
        }),
        ("spoofed session id", {
            Box::new(move |sid| {
                let spoof = InputBatch {
                    session: sid + 1000,
                    tick: 0,
                    intents: vec![],
                };
                vec![transport::frame_msg(
                    MSG_INPUT,
                    &sgl_net::input::encode(&spoof),
                )]
            })
        }),
        ("unexpected message kind", {
            Box::new(move |_| vec![transport::frame_msg(MSG_HELLO, &hello_payload(1, "x"))])
        }),
        ("hostile length prefix", {
            Box::new(move |_| vec![u32::MAX.to_le_bytes().to_vec()])
        }),
    ];

    for (name, attack) in attacks {
        let before_pop = sim.population();
        // Handshake a raw attacker.
        let mut raw = TcpStream::connect(addr).unwrap();
        write_msg(
            &mut raw,
            MSG_HELLO,
            &hello_payload(PROTOCOL_VERSION, &spec.to_string()),
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while listener.session_count() < 2 {
            listener.accept_pending().unwrap();
            assert!(
                Instant::now() < deadline,
                "attacker handshake stalled ({name})"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let (kind, payload) = read_msg(&mut raw, 1 << 20).unwrap();
        assert_eq!(kind, transport::MSG_WELCOME, "{name}");
        let (_, sid) = transport::decode_welcome(&payload).unwrap();

        for msg in attack(sid) {
            use std::io::Write;
            raw.write_all(&msg).unwrap();
        }
        // Let the bytes land, then drain.
        std::thread::sleep(Duration::from_millis(5));
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let report = listener.drain_inputs(&mut sim);
            if report.disconnects == 1 {
                break;
            }
            assert_eq!(report.disconnects, 0, "{name}");
            assert!(Instant::now() < deadline, "no disconnect for {name}");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            listener.session_count(),
            1,
            "{name}: only the offender drops"
        );
        assert_eq!(sim.population(), before_pop, "{name}: world untouched");
        // The offender got an ERROR notice before the close.
        let (kind, _) = read_msg(&mut raw, 1 << 20).unwrap();
        assert_eq!(kind, MSG_ERROR, "{name}");
        // The healthy session still streams.
        sim.tick();
        listener.pump_frames(&sim);
        healthy[0].recv_frame().unwrap();
        assert_identical(healthy[0].replica(), &sim, ClassId(0), &spec);
    }
}

/// Handshake refusals: a protocol-version mismatch and a subscription
/// the catalog cannot resolve are answered with an ERROR and a close,
/// never a session.
#[test]
fn handshake_refuses_bad_version_and_bad_subscription() {
    let sim = Simulation::builder().source(GAME).build().unwrap();
    let catalog = sim.world().catalog().clone();
    let mut listener = NetListener::bind("127.0.0.1:0", catalog.clone()).unwrap();
    let addr = listener.local_addr().unwrap();

    // Unresolvable subscription (unknown class).
    let bad_spec = InterestSpec::classes(&["Ghost"], "x", 0.0, 1.0);
    let pending = NetClient::start_connect(addr, catalog.clone(), &bad_spec).unwrap();
    drive_accept(&mut listener);
    match pending.finish() {
        Err(NetError::Refused(msg)) => assert!(msg.contains("Ghost"), "{msg}"),
        Err(other) => panic!("expected a refusal, got {other:?}"),
        Ok(_) => panic!("expected a refusal, got a session"),
    }
    assert_eq!(listener.session_count(), 0);

    // Wrong protocol version, spoken raw.
    let mut raw = TcpStream::connect(addr).unwrap();
    write_msg(
        &mut raw,
        MSG_HELLO,
        &hello_payload(999, "Unit where x in [0, 1]"),
    )
    .unwrap();
    drive_accept(&mut listener);
    let (kind, payload) = read_msg(&mut raw, 1 << 20).unwrap();
    assert_eq!(kind, MSG_ERROR);
    assert!(String::from_utf8_lossy(&payload).contains("version"));
    assert_eq!(listener.session_count(), 0);
}

fn drive_accept(listener: &mut NetListener) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        listener.accept_pending().unwrap();
        if listener.pending_count() == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "handshake stalled");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Pre-handshake hardening: connections that never (or too slowly, or
/// too hugely) say HELLO cannot pin server memory — the pending queue
/// is capped, handshakes time out, and the HELLO length limit is far
/// below the session message limit.
#[test]
fn pre_handshake_connections_cannot_pin_server_memory() {
    use std::io::Write;

    let sim = Simulation::builder().source(GAME).build().unwrap();
    let catalog = sim.world().catalog().clone();
    let cfg = ListenerConfig {
        max_pending: 2,
        max_hello: 1024,
        handshake_timeout: Duration::from_millis(50),
        ..ListenerConfig::default()
    };
    let mut listener = NetListener::bind_with_config("127.0.0.1:0", catalog.clone(), cfg).unwrap();
    let addr = listener.local_addr().unwrap();

    // A flood of silent connections: at most `max_pending` are queued,
    // the rest are closed on accept.
    let _flood: Vec<TcpStream> = (0..5).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while listener.pending_count() < 2 {
        listener.accept_pending().unwrap();
        assert!(Instant::now() < deadline, "flood never arrived");
        std::thread::sleep(Duration::from_millis(1));
    }
    listener.accept_pending().unwrap();
    assert!(listener.pending_count() <= 2, "pending queue is capped");

    // The survivors dawdle past the handshake timeout and are dropped,
    // even though their sockets stay open.
    std::thread::sleep(Duration::from_millis(60));
    listener.accept_pending().unwrap();
    assert_eq!(listener.pending_count(), 0, "dawdlers time out");

    // A length prefix claiming a HELLO beyond `max_hello` is dropped
    // before any allocation: the attacker observes a close, never a
    // WELCOME.
    let mut big = TcpStream::connect(addr).unwrap();
    big.write_all(&(1u32 << 20).to_le_bytes()).unwrap();
    big.set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut buf = [0u8; 8];
    loop {
        listener.accept_pending().unwrap();
        match std::io::Read::read(&mut big, &mut buf) {
            Ok(0) => break, // the server closed on us — the drop happened
            Ok(_) => panic!("server must not answer an oversized HELLO"),
            Err(_) => {} // read timeout: keep driving the accept loop
        }
        assert!(Instant::now() < deadline, "oversized HELLO never dropped");
    }
    assert_eq!(listener.session_count(), 0);

    // An honest client still handshakes fine.
    let spec: InterestSpec = "Unit where x in [0, 100]".parse().unwrap();
    let pending = NetClient::start_connect(addr, catalog, &spec).unwrap();
    drive_accept(&mut listener);
    pending.finish().unwrap();
    assert_eq!(listener.session_count(), 1);
}

/// Input budgets: a session may spend at most
/// `max_intents_per_tick` intents per drain; the excess is dropped and
/// counted (`inputs_throttled`) without disconnecting the session or
/// touching the world, and the budget resets next tick.
#[test]
fn input_budget_throttles_excess_intents_without_disconnect() {
    let mut sim = Simulation::builder().source(GAME).build().unwrap();
    let catalog = sim.world().catalog().clone();
    let class = sim.world().class_id("Unit").unwrap();
    let hp_col = catalog.class(class).state.index_of("hp").unwrap() as u16;
    let cfg = ListenerConfig {
        max_intents_per_tick: 2,
        ..ListenerConfig::default()
    };
    let mut listener = NetListener::bind_with_config("127.0.0.1:0", catalog.clone(), cfg).unwrap();
    let spec: InterestSpec = "Unit where x in [0, 100]".parse().unwrap();
    let mut clients = connect_all(&mut listener, std::slice::from_ref(&spec));

    // Own an entity so the sets are semantically valid.
    clients[0]
        .send(vec![Intent::Spawn {
            req: 1,
            class,
            values: vec![],
        }])
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let report = listener.drain_inputs(&mut sim);
        if report.applied == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "spawn never drained");
        std::thread::sleep(Duration::from_millis(1));
    }
    sim.tick();
    listener.pump_frames(&sim);
    clients[0].recv_frame().unwrap();
    let pet = clients[0].take_spawned()[0].1;

    // Five valid sets in one batch: budget 2 → 2 applied, 3 throttled.
    let burst: Vec<Intent> = (0..5)
        .map(|i| Intent::Set {
            class,
            id: pet,
            col: hp_col,
            value: Value::Number(i as f64),
        })
        .collect();
    clients[0].send(burst).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let report = loop {
        let report = listener.drain_inputs(&mut sim);
        if report.msgs > 0 {
            break report;
        }
        assert!(Instant::now() < deadline, "burst never drained");
        std::thread::sleep(Duration::from_millis(1));
    };
    assert_eq!(
        (
            report.applied,
            report.throttled,
            report.rejected,
            report.disconnects
        ),
        (2, 3, 0, 0),
        "2 spent, 3 dropped, nobody disconnected"
    );
    assert_eq!(
        sim.get(pet, "hp").unwrap(),
        Value::Number(1.0),
        "the last in-budget set wins; throttled ones never run"
    );
    sim.tick();
    listener.pump_frames(&sim);
    clients[0].recv_frame().unwrap();
    assert_eq!(listener.last_stats().inputs_throttled, 3);
    let sstats = listener.session_stats(clients[0].session()).unwrap();
    assert_eq!((sstats.inputs_applied, sstats.inputs_throttled), (3, 3));

    // The budget resets: a single intent next tick goes through.
    clients[0]
        .send(vec![Intent::Set {
            class,
            id: pet,
            col: hp_col,
            value: Value::Number(9.0),
        }])
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let report = listener.drain_inputs(&mut sim);
        if report.applied == 1 {
            assert_eq!(report.throttled, 0);
            break;
        }
        assert!(Instant::now() < deadline, "post-reset intent never drained");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(sim.get(pet, "hp").unwrap(), Value::Number(9.0));
    assert_eq!(listener.session_count(), 1, "session survived throughout");
}

/// Live re-subscription over the wire: a `RESUB` message swaps the
/// session's window; the next frame carries the symmetric difference
/// and the replica tracks the *new* region with no reconnect. A
/// resubscription the server cannot resolve disconnects only the
/// offender.
#[test]
fn resubscription_over_the_wire_moves_the_window() {
    let mut sim = Simulation::builder().source(GAME).build().unwrap();
    for i in 0..10 {
        sim.spawn("Unit", &[("x", Value::Number(i as f64 * 10.0))])
            .unwrap();
    }
    let catalog = sim.world().catalog().clone();
    let class = sim.world().class_id("Unit").unwrap();
    let mut listener = NetListener::bind("127.0.0.1:0", catalog.clone()).unwrap();
    let specs: Vec<InterestSpec> = ["Unit where x in [0, 45]", "Unit where x in [0, 200]"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let mut clients = connect_all(&mut listener, &specs);

    let tick = |listener: &mut NetListener, sim: &mut Simulation, clients: &mut [NetClient]| {
        listener.accept_pending().unwrap();
        listener.drain_inputs(sim);
        sim.tick();
        listener.pump_frames(sim);
        for c in clients.iter_mut() {
            c.recv_frame().unwrap();
        }
    };
    tick(&mut listener, &mut sim, &mut clients);
    assert_eq!(clients[0].replica().population(), 5); // x = 0..=40

    let moved: InterestSpec = "Unit where x in [40, 95]".parse().unwrap();
    clients[0].resubscribe(&moved).unwrap();
    // Let the RESUB land, then run ticks until the swap is visible.
    let deadline = Instant::now() + Duration::from_secs(10);
    while listener.session_interest(clients[0].session()) != Some(&moved) {
        tick(&mut listener, &mut sim, &mut clients);
        assert!(Instant::now() < deadline, "RESUB never applied");
    }
    tick(&mut listener, &mut sim, &mut clients);
    assert_eq!(clients[0].replica().population(), 6); // x = 40..=90
    assert_identical(clients[0].replica(), &sim, class, &moved);
    assert_identical(clients[1].replica(), &sim, class, &specs[1]);
    assert_eq!(listener.session_count(), 2);

    // An unresolvable re-subscription is a protocol violation: the
    // offender is disconnected, the neighbour streams on.
    clients[0]
        .resubscribe(&InterestSpec::classes(&["Ghost"], "x", 0.0, 1.0))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        listener.accept_pending().unwrap();
        let report = listener.drain_inputs(&mut sim);
        if report.disconnects == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "bad RESUB never disconnected");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(listener.session_count(), 1);
    sim.tick();
    listener.pump_frames(&sim);
    clients[1].recv_frame().unwrap();
    assert_identical(clients[1].replica(), &sim, class, &specs[1]);
}

/// Backpressure: a client that stops reading cannot pin server memory —
/// its queue depth is visible in `NetStats::backlog_bytes` until it
/// crosses `max_queued`, at which point the session is disconnected.
#[test]
fn non_reading_clients_are_disconnected_on_queue_overflow() {
    let mut sim = Simulation::builder().source(GAME).build().unwrap();
    let mut ids = Vec::new();
    for i in 0..512 {
        ids.push(
            sim.spawn("Unit", &[("x", Value::Number((i % 100) as f64))])
                .unwrap(),
        );
    }
    let catalog = sim.world().catalog().clone();
    let cfg = ListenerConfig {
        net: NetConfig::default(),
        max_msg: 1 << 24,
        max_queued: 256 * 1024,
        ..ListenerConfig::default()
    };
    let mut listener = NetListener::bind_with_config("127.0.0.1:0", catalog.clone(), cfg).unwrap();
    let spec: InterestSpec = "Unit where x in [0, 100]".parse().unwrap();
    // Handshake, then never read again.
    let _mute = connect_all(&mut listener, &[spec]);

    let mut saw_backlog = false;
    let mut disconnected = false;
    for round in 0..3000 {
        // Churn every row so every tick ships a fat delta frame.
        for (i, &id) in ids.iter().enumerate() {
            sim.set(id, "hp", &Value::Number((round * 1000 + i) as f64))
                .unwrap();
        }
        sim.tick();
        listener.pump_frames(&sim);
        let stats = listener.last_stats();
        saw_backlog |= stats.backlog_bytes > 0;
        if stats.disconnects > 0 {
            disconnected = true;
            break;
        }
    }
    assert!(
        saw_backlog,
        "queued bytes must be accounted before overflow"
    );
    assert!(disconnected, "overflowing session must be dropped");
    assert_eq!(listener.session_count(), 0);
}

mod frame_determinism {
    //! The shard-determinism contract, property-tested: for random
    //! client arrival/departure schedules and random interest windows,
    //! the frame byte-stream each client observes is **bit-identical**
    //! across every transport — the legacy sweep oracle, epoll shards
    //! at 1/2/4 I/O threads, and the poll(2) fallback. Readiness order
    //! and thread count must never leak into frame content.

    use super::*;
    use proptest::prelude::*;

    /// The windows a generated client may subscribe.
    const WINDOWS: [&str; 4] = [
        "Unit where x in [0, 200]",
        "Unit where x in [20, 80]",
        "Unit where x in [60, 140]",
        "Unit where x in [0, 50]",
    ];

    /// Run one schedule against one transport and collect, per client,
    /// the exact frame payload bytes it received while connected.
    /// Arrivals are serialized (attach order fixes session ids);
    /// departures just close the socket and stop reading — the server
    /// notices whenever its transport does, which must not affect what
    /// anyone else is sent.
    fn run_plan(io: IoConfig, plan: &[(u8, u8, usize)], ticks: u8) -> Vec<Vec<Vec<u8>>> {
        let mut sim = Simulation::builder().source(GAME).build().unwrap();
        let mut ids = Vec::new();
        for k in 0..24usize {
            ids.push(
                sim.spawn("Unit", &[("x", Value::Number((k * 7 % 200) as f64))])
                    .unwrap(),
            );
        }
        let catalog = sim.world().catalog().clone();
        let cfg = ListenerConfig {
            io,
            ..ListenerConfig::default()
        };
        let mut listener = NetListener::bind_with_config("127.0.0.1:0", catalog, cfg).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut socks: Vec<Option<TcpStream>> = plan.iter().map(|_| None).collect();
        let mut frames: Vec<Vec<Vec<u8>>> = plan.iter().map(|_| Vec::new()).collect();
        for t in 0..ticks {
            // Departures first: a client leaving at t collects nothing
            // from tick t on.
            for (i, &(join, life, _)) in plan.iter().enumerate() {
                if join + life == t {
                    socks[i] = None;
                }
            }
            // Serialized arrivals in client order.
            for (i, &(join, _, w)) in plan.iter().enumerate() {
                if join != t {
                    continue;
                }
                let mut raw = TcpStream::connect(addr).unwrap();
                raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                write_msg(
                    &mut raw,
                    MSG_HELLO,
                    &hello_payload(PROTOCOL_VERSION, WINDOWS[w]),
                )
                .unwrap();
                let want = listener.session_count() + 1;
                let deadline = Instant::now() + Duration::from_secs(10);
                while listener.session_count() < want {
                    listener.accept_pending().unwrap();
                    assert!(Instant::now() < deadline, "handshake stalled");
                    std::thread::sleep(Duration::from_millis(1));
                }
                let (kind, _) = read_msg(&mut raw, 1 << 20).unwrap();
                assert_eq!(kind, transport::MSG_WELCOME);
                socks[i] = Some(raw);
            }
            // Deterministic churn marching entities across windows.
            for (k, &id) in ids.iter().enumerate() {
                let x = ((k * 37 + t as usize * 13) % 200) as f64;
                sim.set(id, "x", &Value::Number(x)).unwrap();
            }
            listener.accept_pending().unwrap();
            listener.drain_inputs(&mut sim);
            sim.tick();
            listener.pump_frames(&sim);
            // One frame per live session per tick (elision off).
            for (i, sock) in socks.iter_mut().enumerate() {
                if let Some(raw) = sock {
                    let (kind, payload) = read_msg(raw, 1 << 24).unwrap();
                    assert_eq!(kind, transport::MSG_FRAME);
                    frames[i].push(payload);
                }
            }
        }
        frames
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn frames_bit_identical_across_transports(
            plan in prop::collection::vec((0u8..6, 1u8..6, 0usize..4), 1..5),
            ticks in 6u8..10,
        ) {
            let reference = run_plan(IoConfig::sweep(), &plan, ticks);
            for io in [
                IoConfig::readiness(1),
                IoConfig::readiness(2),
                IoConfig::readiness(4),
                IoConfig::poll_fallback(2),
            ] {
                let got = run_plan(io, &plan, ticks);
                prop_assert_eq!(&reference, &got, "transport {:?} diverged from sweep", io);
            }
        }
    }
}

/// Regression for the old `flush()` re-checking every socket: the
/// backlog set is per-shard, so flushing a backlog that lives entirely
/// on one shard must not wake — or cost a single syscall on — any
/// other shard. The shim's instrumented per-thread counters
/// (`NetListener::io_shard_stats`) are the proof.
#[cfg(unix)]
#[test]
fn flush_leaves_untouched_shards_at_zero_syscalls() {
    let mut sim = Simulation::builder().source(GAME).build().unwrap();
    let mut ids = Vec::new();
    for i in 0..512 {
        ids.push(
            sim.spawn("Unit", &[("x", Value::Number((i % 100) as f64))])
                .unwrap(),
        );
    }
    let catalog = sim.world().catalog().clone();
    let cfg = ListenerConfig {
        io: IoConfig::readiness(4),
        max_queued: 1 << 30,
        ..ListenerConfig::default()
    };
    let mut listener = NetListener::bind_with_config("127.0.0.1:0", catalog, cfg).unwrap();
    let spec: InterestSpec = "Unit where x in [0, 100]".parse().unwrap();
    // One session — its socket lives on exactly one of the 4 shards.
    let _mute = connect_all(&mut listener, std::slice::from_ref(&spec));
    let owner = listener
        .io_shard_stats()
        .iter()
        .position(|s| s.sessions == 1)
        .expect("one shard owns the session");

    // Never read: churn until the owner shard holds visible backlog.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut round = 0;
    while listener.io_shard_stats()[owner].backlog_bytes == 0 {
        assert!(Instant::now() < deadline, "backlog never materialized");
        for (i, &id) in ids.iter().enumerate() {
            sim.set(id, "hp", &Value::Number((round * 1000 + i) as f64))
                .unwrap();
        }
        sim.tick();
        listener.pump_frames(&sim);
        round += 1;
    }
    // Let the owner shard finish the wake it is processing and settle
    // back into its wait.
    std::thread::sleep(Duration::from_millis(100));

    let before = listener.io_shard_stats();
    for _ in 0..3 {
        listener.flush();
        std::thread::sleep(Duration::from_millis(20));
    }
    let after = listener.io_shard_stats();

    for t in 0..4 {
        if t == owner {
            assert!(
                after[t].waits > before[t].waits,
                "the backlogged shard must be woken by flush"
            );
        } else {
            assert_eq!(
                after[t], before[t],
                "shard {t} has no backlog and must do zero syscalls on flush"
            );
        }
    }
}
