//! Determinism and checkpoint/replay (§3.3 of the paper, DESIGN.md §9).

use sgl_workloads::rts::{army_sizes, build, RtsParams};
use sgl_workloads::traffic::{self, TrafficParams};

#[test]
fn identical_seeds_identical_battles() {
    let params = RtsParams {
        units_per_side: 40,
        arena: 60.0,
        seed: 123,
        ..RtsParams::default()
    };
    let mut a = build(&params);
    let mut b = build(&params);
    a.run(40);
    b.run(40);
    assert_eq!(army_sizes(&a), army_sizes(&b));
    let wa = a.world();
    let wb = b.world();
    let class = wa.class_id("Unit").unwrap();
    assert_eq!(wa.table(class).ids(), wb.table(class).ids());
    for id in wa.table(class).ids() {
        assert_eq!(wa.get(*id, "x").unwrap(), wb.get(*id, "x").unwrap());
        assert_eq!(
            wa.get(*id, "health").unwrap(),
            wb.get(*id, "health").unwrap()
        );
    }
}

#[test]
fn checkpoint_restore_replay_is_exact() {
    let params = RtsParams {
        units_per_side: 30,
        arena: 50.0,
        seed: 5,
        ..RtsParams::default()
    };
    let mut sim = build(&params);
    sim.run(10);
    let snap = sim.checkpoint();

    // Continue 15 ticks and fingerprint.
    sim.run(15);
    let after_a = fingerprint(&sim);

    // Restore, replay the same 15 ticks — exact match required
    // (resumable checkpoints, §3.3).
    sim.restore(&snap).unwrap();
    assert_eq!(sim.world().tick(), 10);
    sim.run(15);
    let after_b = fingerprint(&sim);
    assert_eq!(after_a, after_b);
}

fn fingerprint(sim: &sgl::Simulation) -> Vec<(u64, String, String)> {
    let w = sim.world();
    let class = w.class_id("Unit").unwrap();
    let mut v: Vec<(u64, String, String)> = w
        .table(class)
        .ids()
        .iter()
        .map(|id| {
            (
                id.0,
                format!("{}", w.get(*id, "x").unwrap()),
                format!("{}", w.get(*id, "health").unwrap()),
            )
        })
        .collect();
    v.sort();
    v
}

#[test]
fn checkpoint_size_scales_linearly() {
    let small = build(&RtsParams {
        units_per_side: 50,
        ..RtsParams::default()
    });
    let large = build(&RtsParams {
        units_per_side: 500,
        ..RtsParams::default()
    });
    let s = small.checkpoint().len() as f64;
    let l = large.checkpoint().len() as f64;
    let ratio = l / s;
    assert!(
        (7.0..13.0).contains(&ratio),
        "10x entities should be ~10x bytes: {s} → {l} (ratio {ratio:.1})"
    );
}

#[test]
fn traffic_deterministic_across_thread_counts() {
    // Vehicle behaviour uses avg-of-identical and max combinators, so
    // parallel partitioning must not change anything.
    let mk = |threads| {
        let mut sim = traffic::build(&TrafficParams {
            vehicles: 300,
            blocks: 4,
            threads,
            ..TrafficParams::default()
        });
        sim.run(30);
        traffic::mean_progress(&sim)
    };
    let serial = mk(1);
    let parallel = mk(8);
    assert_eq!(serial, parallel);
}
