//! Determinism and checkpoint/replay (§3.3 of the paper, DESIGN.md §9).

use sgl_workloads::rts::{army_sizes, build, RtsParams};
use sgl_workloads::traffic::{self, TrafficParams};

#[test]
fn identical_seeds_identical_battles() {
    let params = RtsParams {
        units_per_side: 40,
        arena: 60.0,
        seed: 123,
        ..RtsParams::default()
    };
    let mut a = build(&params);
    let mut b = build(&params);
    a.run(40);
    b.run(40);
    assert_eq!(army_sizes(&a), army_sizes(&b));
    let wa = a.world();
    let wb = b.world();
    let class = wa.class_id("Unit").unwrap();
    assert_eq!(wa.table(class).ids(), wb.table(class).ids());
    for id in wa.table(class).ids() {
        assert_eq!(wa.get(*id, "x").unwrap(), wb.get(*id, "x").unwrap());
        assert_eq!(
            wa.get(*id, "health").unwrap(),
            wb.get(*id, "health").unwrap()
        );
    }
}

#[test]
fn checkpoint_restore_replay_is_exact() {
    let params = RtsParams {
        units_per_side: 30,
        arena: 50.0,
        seed: 5,
        ..RtsParams::default()
    };
    let mut sim = build(&params);
    sim.run(10);
    let snap = sim.checkpoint();

    // Continue 15 ticks and fingerprint.
    sim.run(15);
    let after_a = fingerprint(&sim);

    // Restore, replay the same 15 ticks — exact match required
    // (resumable checkpoints, §3.3).
    sim.restore(&snap).unwrap();
    assert_eq!(sim.world().tick(), 10);
    sim.run(15);
    let after_b = fingerprint(&sim);
    assert_eq!(after_a, after_b);
}

fn fingerprint(sim: &sgl::Simulation) -> Vec<(u64, String, String)> {
    let w = sim.world();
    let class = w.class_id("Unit").unwrap();
    let mut v: Vec<(u64, String, String)> = w
        .table(class)
        .ids()
        .iter()
        .map(|id| {
            (
                id.0,
                format!("{}", w.get(*id, "x").unwrap()),
                format!("{}", w.get(*id, "health").unwrap()),
            )
        })
        .collect();
    v.sort();
    v
}

#[test]
fn checkpoint_size_scales_linearly() {
    let small = build(&RtsParams {
        units_per_side: 50,
        ..RtsParams::default()
    });
    let large = build(&RtsParams {
        units_per_side: 500,
        ..RtsParams::default()
    });
    let s = small.checkpoint().len() as f64;
    let l = large.checkpoint().len() as f64;
    let ratio = l / s;
    assert!(
        (7.0..13.0).contains(&ratio),
        "10x entities should be ~10x bytes: {s} → {l} (ratio {ratio:.1})"
    );
}

/// The tick fan-out must be bit-identical to serial execution at every
/// thread count — including 7, which exercises chunk counts that do not
/// divide evenly. `parallel_threshold: 1` forces the parallel path even
/// on these deliberately small worlds.
#[test]
fn rts_bitwise_identical_across_thread_matrix() {
    let run = |threads: usize| {
        let mut sim = build(&RtsParams {
            units_per_side: 60,
            arena: 80.0,
            seed: 42,
            threads,
            parallel_threshold: Some(1),
            ..RtsParams::default()
        });
        sim.run(25);
        fingerprint(&sim)
    };
    let serial = run(1);
    for threads in [2usize, 4, 7] {
        assert_eq!(serial, run(threads), "threads = {threads}");
    }
}

/// Boids at every thread count: `avg` combinators over floating point,
/// where all emissions are self-targeted — each row's ⊕ fold happens
/// whole inside one chunk, so any chunk geometry reproduces serial bits.
#[test]
fn boids_bitwise_identical_across_thread_matrix() {
    use sgl_workloads::boids;
    let run = |threads: usize| {
        let mut sim =
            boids::build_threaded(100, 40.0, 11, sgl::ExecMode::Compiled, threads, Some(1));
        sim.run(20);
        let w = sim.world();
        let class = w.class_id("Boid").unwrap();
        w.table(class)
            .ids()
            .iter()
            .map(|&id| {
                ["x", "y", "hx", "hy", "flock"].map(|attr| format!("{}", w.get(id, attr).unwrap()))
            })
            .collect::<Vec<_>>()
    };
    let serial = run(1);
    for threads in [2usize, 4, 7] {
        assert_eq!(serial, run(threads), "threads = {threads}");
    }
}

#[test]
fn traffic_deterministic_across_thread_counts() {
    // Vehicle behaviour uses avg-of-identical and max combinators, so
    // parallel partitioning must not change anything.
    let mk = |threads| {
        let mut sim = traffic::build(&TrafficParams {
            vehicles: 300,
            blocks: 4,
            threads,
            ..TrafficParams::default()
        });
        sim.run(30);
        traffic::mean_progress(&sim)
    };
    let serial = mk(1);
    let parallel = mk(8);
    assert_eq!(serial, parallel);
}
