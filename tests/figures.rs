//! F1/F2: the paper's two figures, reproduced end to end.

use sgl::{Simulation, Value};

/// Figure 1, verbatim modulo the elided `...` lines.
const FIG1: &str = r#"
class Unit {
state:
  number player = 0;
  number x = 0;
  number y = 0;
  number health = 0;
effects:
  number vx : avg;
  number vy : avg;
  number damage : sum;
}
"#;

#[test]
fn f1_class_declaration_generates_schema() {
    let sim = Simulation::builder().source(FIG1).build().unwrap();
    let def = sim.game().catalog.class_by_name("Unit").unwrap();
    // The compiler generated the relational schema (§2.1): one extent
    // with the four state attributes…
    assert_eq!(
        def.state.to_string(),
        "(player: number, x: number, y: number, health: number)"
    );
    // …and the three ⊕-combined effect variables.
    let combs: Vec<(&str, &str)> = def
        .effects
        .iter()
        .map(|e| (e.name.as_str(), e.comb.name()))
        .collect();
    assert_eq!(combs, vec![("vx", "avg"), ("vy", "avg"), ("damage", "sum")]);
}

#[test]
fn f1_pretty_print_roundtrip() {
    let parsed = sgl_frontend::parse(FIG1).unwrap();
    let printed = sgl_ast::pretty::print_program(&parsed);
    let reparsed = sgl_frontend::parse(&printed).unwrap();
    assert_eq!(printed, sgl_ast::pretty::print_program(&reparsed));
}

/// Figure 2, hosted in a class that applies the count to state.
const FIG2: &str = r#"
class Unit {
state:
  number x = 0;
  number y = 0;
  number range = 3;
  number seen = 0;
effects:
  number near : sum;
update:
  seen = near;
script count_in_range {
  accum number cnt with sum over unit w from UNIT {
    if (w.x >= x - range && w.x <= x + range &&
        w.y >= y - range && w.y <= y + range) {
      cnt <- 1;
    }
  } in {
    near <- cnt;
  }
}
}
"#;

#[test]
fn f2_accum_counts_match_brute_force() {
    let mut sim = Simulation::builder().source(FIG2).build().unwrap();
    // A deterministic scatter of units.
    let mut pts = Vec::new();
    let mut state = 9u64;
    for _ in 0..60 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let x = (state >> 33) as f64 % 50.0;
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let y = (state >> 33) as f64 % 50.0;
        pts.push((x, y));
    }
    let mut ids = Vec::new();
    for &(x, y) in &pts {
        ids.push(
            sim.spawn("Unit", &[("x", Value::Number(x)), ("y", Value::Number(y))])
                .unwrap(),
        );
    }
    sim.tick();
    for (i, &id) in ids.iter().enumerate() {
        let expect = pts
            .iter()
            .filter(|(x, y)| (x - pts[i].0).abs() <= 3.0 && (y - pts[i].1).abs() <= 3.0)
            .count() as f64;
        assert_eq!(
            sim.get(id, "seen").unwrap(),
            Value::Number(expect),
            "unit {i} at {:?}",
            pts[i]
        );
    }
}

#[test]
fn f2_join_pairs_equal_total_neighbour_count() {
    let mut sim = Simulation::builder().source(FIG2).build().unwrap();
    for i in 0..20 {
        sim.spawn("Unit", &[("x", Value::Number(i as f64))])
            .unwrap();
    }
    sim.tick();
    // One accum step executed; its result-pair count equals the sum of
    // all per-unit neighbour counts (range 3 on a line: interior units
    // see 7, edges fewer).
    let stats = sim.last_stats();
    assert_eq!(stats.joins.len(), 1);
    let world = sim.world();
    let class = world.class_id("Unit").unwrap();
    let total: f64 = world
        .table(class)
        .column_by_name("seen")
        .unwrap()
        .f64()
        .iter()
        .sum();
    assert_eq!(stats.joins[0].pairs as f64, total);
}
