//! §4.2 shared-nothing execution: distributed ticks must be
//! state-identical to single-node execution whenever script reads stay
//! within the halo radius, and the communication profile must behave
//! (ghost traffic grows with node count, selective workloads stay
//! partition-local).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sgl::{Simulation, Value};
use sgl_dist::{DistConfig, DistSim};

/// A skirmish-flavoured workload: units drift, count neighbours, nudge
/// every neighbour they see (an effect landing on the *other* entity —
/// the write that must cross nodes when the neighbour is a ghost), and
/// slow down in crowds. Accum band join + sum/avg effects + expression
/// updates, all within a 12-unit interaction radius.
const CROWD: &str = r#"
class Unit {
state:
  number x = 0;
  number y = 0;
  number vx = 2;
  number crowding = 0;
effects:
  number near : sum;
  number nudge : sum;
  number push : avg;
update:
  crowding = near + nudge;
  x = x + vx - push;
script sense {
  accum number cnt with sum over Unit u from Unit {
    if (u.x >= x - 12 && u.x <= x + 12 &&
        u.y >= y - 12 && u.y <= y + 12) {
      cnt <- 1;
      u.nudge <- 1;
    }
  } in {
    near <- cnt;
    if (cnt > 3) {
      push <- 1;
    }
  }
}
}
"#;

fn compiled_game(src: &str) -> sgl::CompiledGame {
    sgl_compiler_compile(src)
}

fn sgl_compiler_compile(src: &str) -> sgl::CompiledGame {
    // Route through the public facade so the test exercises the same
    // path applications use.
    let sim = Simulation::builder().source(src).build().unwrap();
    sim.game().clone()
}

fn scatter(n: usize, span: f64, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (rng.gen_range(0.0..span), rng.gen_range(0.0..span)))
        .collect()
}

/// Distributed == single-node for 1, 2, 4 and 8 nodes, across ticks
/// that include boundary crossings.
#[test]
fn cluster_matches_single_node_exactly() {
    let span = 240.0;
    let points = scatter(80, span, 7);

    for nodes in [1usize, 2, 4, 8] {
        let mut cluster = DistSim::new(
            compiled_game(CROWD),
            DistConfig::new(nodes, "x", (0.0, span), 12.0),
        )
        .unwrap();
        // Fresh single-node reference per node count, spawned in the
        // same order so entity ids coincide.
        let mut reference = Simulation::builder().source(CROWD).build().unwrap();
        let mut ids = Vec::new();
        for &(x, y) in &points {
            let a = cluster
                .spawn("Unit", &[("x", Value::Number(x)), ("y", Value::Number(y))])
                .unwrap();
            let b = reference
                .spawn("Unit", &[("x", Value::Number(x)), ("y", Value::Number(y))])
                .unwrap();
            assert_eq!(a, b, "id allocation must coincide");
            ids.push(a);
        }

        let mut partial_msgs = 0;
        for _ in 0..8 {
            cluster.step();
            partial_msgs += cluster.last_stats().partial_traffic.msgs;
            reference.tick();
        }
        for &id in &ids {
            for attr in ["x", "crowding"] {
                let want = reference.get(id, attr).unwrap().as_number().unwrap();
                let got = cluster.get(id, attr).unwrap().as_number().unwrap();
                assert!(
                    (want - got).abs() < 1e-9,
                    "{attr} of {id} with {nodes} nodes: single {want} vs dist {got}"
                );
            }
        }
        if nodes > 1 {
            assert!(
                partial_msgs > 0,
                "the neighbour nudges must actually cross nodes ({nodes} nodes)"
            );
        }
    }
}

/// A 4-node cluster must produce bit-identical state at every worker
/// thread count: the shared pool drives each node's effect fan-out, the
/// update phase and the halo gather, and every reduce folds in a
/// thread-count-independent order. 7 exercises chunking that does not
/// divide evenly.
#[test]
fn cluster_bitwise_identical_across_thread_matrix() {
    let span = 240.0;
    let points = scatter(80, span, 13);
    let run = |threads: usize| {
        let mut cfg = DistConfig::new(4, "x", (0.0, span), 12.0).threads(threads);
        cfg.exec.parallel_threshold = 1;
        let mut cluster = DistSim::new(compiled_game(CROWD), cfg).unwrap();
        let mut ids = Vec::new();
        for &(x, y) in &points {
            ids.push(
                cluster
                    .spawn("Unit", &[("x", Value::Number(x)), ("y", Value::Number(y))])
                    .unwrap(),
            );
        }
        for _ in 0..8 {
            cluster.step();
        }
        ids.iter()
            .map(|&id| ["x", "crowding"].map(|attr| format!("{}", cluster.get(id, attr).unwrap())))
            .collect::<Vec<_>>()
    };
    let serial = run(1);
    for threads in [2usize, 4, 7] {
        assert_eq!(serial, run(threads), "threads = {threads}");
    }
}

/// Ghost traffic scales with the number of stripe boundaries; a single
/// node needs no network at all.
#[test]
fn ghost_traffic_scales_with_node_count() {
    let span = 200.0;
    let points = scatter(120, span, 11);
    let mut bytes_by_nodes = Vec::new();
    for nodes in [1usize, 2, 4, 8] {
        let mut cluster = DistSim::new(
            compiled_game(CROWD),
            DistConfig::new(nodes, "x", (0.0, span), 12.0),
        )
        .unwrap();
        for &(x, y) in &points {
            cluster
                .spawn("Unit", &[("x", Value::Number(x)), ("y", Value::Number(y))])
                .unwrap();
        }
        cluster.step();
        bytes_by_nodes.push((nodes, cluster.last_stats().ghost_traffic.bytes));
    }
    assert_eq!(bytes_by_nodes[0].1, 0, "one node ⇒ no ghosts");
    for w in bytes_by_nodes.windows(2) {
        assert!(
            w[1].1 >= w[0].1,
            "more stripes ⇒ at least as much halo traffic: {bytes_by_nodes:?}"
        );
    }
}

/// Entities spread across stripes actually live on different nodes, and
/// the cluster keeps serving reads after migrations.
#[test]
fn population_spreads_and_migrates() {
    let span = 100.0;
    let mut cluster = DistSim::new(
        compiled_game(CROWD),
        DistConfig::new(4, "x", (0.0, span), 12.0),
    )
    .unwrap();
    for &(x, y) in &scatter(100, span, 3) {
        cluster
            .spawn("Unit", &[("x", Value::Number(x)), ("y", Value::Number(y))])
            .unwrap();
    }
    let before: Vec<usize> = (0..4).map(|k| cluster.node_population(k)).collect();
    assert!(before.iter().all(|&p| p > 0), "spread: {before:?}");

    let mut migrations = 0;
    for _ in 0..10 {
        cluster.step();
        migrations += cluster.last_stats().migrations;
    }
    assert!(migrations > 0, "drifting units must cross stripes");
    assert_eq!(cluster.population(), 100, "no one lost in migration");
}

/// The BSP model's simulated time grows with traffic; with everything
/// on one node it reduces to pure compute.
#[test]
fn simulated_time_accounts_for_network() {
    let span = 160.0;
    let points = scatter(90, span, 5);
    let mut single = DistSim::new(
        compiled_game(CROWD),
        DistConfig::new(1, "x", (0.0, span), 12.0),
    )
    .unwrap();
    let mut four = DistSim::new(
        compiled_game(CROWD),
        DistConfig::new(4, "x", (0.0, span), 12.0),
    )
    .unwrap();
    for &(x, y) in &points {
        for sim in [&mut single, &mut four] {
            sim.spawn("Unit", &[("x", Value::Number(x)), ("y", Value::Number(y))])
                .unwrap();
        }
    }
    single.step();
    four.step();
    assert_eq!(single.last_stats().total_bytes(), 0);
    assert!(four.last_stats().total_bytes() > 0);
    assert!(four.last_stats().simulated_seconds > 0.0);
}
