//! Property test: for *generated* programs, the compiled set-at-a-time
//! executor and the object-at-a-time interpreter are observationally
//! identical — the core claim of the whole system ("despite the fact
//! that this script looks imperative, it can still be compiled to a
//! relational algebra query").
//!
//! Programs are random but valid by construction: number state
//! variables, effect variables across the ⊕ combinators, update rules,
//! and scripts of (guarded) effect assignments plus a neighbour accum.
//! Inputs are integer-valued so fp arithmetic is exact and equality can
//! be demanded bitwise.

use proptest::prelude::*;
use sgl::{ExecMode, Simulation, Value};

/// Identifier pool (reserved-word-safe by the `v` prefix).
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,5}".prop_map(|s| format!("v{s}"))
}

/// An integer-valued arithmetic expression over the given variables.
/// Division is excluded to keep values integral (and finite).
fn int_expr(vars: Vec<String>) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0i32..20).prop_map(|n| n.to_string()),
        proptest::sample::select(vars),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        (
            inner.clone(),
            proptest::sample::select(vec!["+", "-", "*"]),
            inner,
        )
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

/// A generated program: state vars, one effect per combinator style,
/// update rules folding effects into state, a script of guarded
/// emissions, and a range-count accum over the extent.
#[derive(Debug, Clone)]
struct GenProgram {
    source: String,
    states: Vec<String>,
}

fn program() -> impl Strategy<Value = GenProgram> {
    (
        prop::collection::vec(ident(), 2..5),
        prop::collection::vec(ident(), 1..3),
    )
        .prop_flat_map(|(mut states, mut effects)| {
            states.sort();
            states.dedup();
            effects.sort();
            effects.dedup();
            effects.retain(|e| !states.contains(e));
            if effects.is_empty() {
                effects.push("vefx".to_string());
            }
            let svars = states.clone();
            let stmts = prop::collection::vec(
                (
                    proptest::sample::select(effects.clone()),
                    int_expr(svars.clone()),
                    prop::option::of(int_expr(svars.clone())),
                ),
                1..5,
            );
            let combs = prop::collection::vec(
                proptest::sample::select(vec!["sum", "max", "min", "avg"]),
                effects.len(),
            );
            (Just(states), Just(effects), combs, stmts)
        })
        .prop_map(|(states, effects, combs, stmts)| {
            let mut src = String::from("class Gen {\nstate:\n");
            for s in &states {
                src.push_str(&format!("  number {s} = 1;\n"));
            }
            // A spatial pair for the accum (always present).
            src.push_str("  number px = 0;\n  number py = 0;\n  number seen = 0;\n");
            src.push_str("effects:\n");
            for (e, c) in effects.iter().zip(&combs) {
                src.push_str(&format!("  number {e} : {c} = 0;\n"));
            }
            src.push_str("  number near : sum;\n");
            src.push_str("update:\n");
            // Fold every effect into the first state var so compiled
            // results are observable; count neighbours into `seen`.
            let s0 = &states[0];
            let folded = effects
                .iter()
                .fold(s0.clone(), |acc, e| format!("({acc} + {e})"));
            src.push_str(&format!("  {s0} = {folded};\n"));
            src.push_str("  seen = near;\n");
            src.push_str("script emitters {\n");
            for (target, value, guard) in &stmts {
                match guard {
                    Some(g) => src.push_str(&format!(
                        "  if ({g} > 2) {{ {target} <- {value}; }}\n"
                    )),
                    None => src.push_str(&format!("  {target} <- {value};\n")),
                }
            }
            src.push_str("}\n");
            src.push_str(
                "script census {\n  accum number cnt with sum over Gen g from Gen {\n    \
                 if (g.px >= px - 4 && g.px <= px + 4 && g.py >= py - 4 && g.py <= py + 4) {\n      \
                 cnt <- 1;\n    }\n  } in {\n    near <- cnt;\n  }\n}\n",
            );
            src.push_str("}\n");
            GenProgram {
                source: src,
                states,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Compiled == interpreted after several ticks, for random programs
    /// and random integer initial states.
    #[test]
    fn compiled_equals_interpreted(
        prog in program(),
        placements in prop::collection::vec((0i32..12, 0i32..12, 1i32..6), 2..10),
        ticks in 1usize..4,
    ) {
        let build = |mode: ExecMode| {
            Simulation::builder()
                .source(&prog.source)
                .mode(mode)
                .build()
                .unwrap_or_else(|e| panic!("{e}\n{}", prog.source))
        };
        let mut compiled = build(ExecMode::Compiled);
        let mut interp = build(ExecMode::Interpreted);
        let mut ids = Vec::new();
        for &(px, py, init) in &placements {
            let vals = [
                ("px", Value::Number(px as f64)),
                ("py", Value::Number(py as f64)),
                (prog.states[0].as_str(), Value::Number(init as f64)),
            ];
            let a = compiled.spawn("Gen", &vals).unwrap();
            let b = interp.spawn("Gen", &vals).unwrap();
            prop_assert_eq!(a, b);
            ids.push(a);
        }
        for _ in 0..ticks {
            compiled.tick();
            interp.tick();
        }
        for &id in &ids {
            for attr in prog.states.iter().map(String::as_str).chain(["seen"]) {
                let a = compiled.get(id, attr).unwrap();
                let b = interp.get(id, attr).unwrap();
                prop_assert_eq!(
                    a, b,
                    "attr {} of {} diverged\n{}",
                    attr, id, prog.source
                );
            }
        }
    }

    /// Random extent partitions reduce to the serial effect order: for
    /// random programs, a parallel run with a random chunk size and
    /// thread count is bitwise identical to the serial engine. This is
    /// the determinism contract of the worker-pool fan-out — chunk
    /// geometry depends only on extent size, partial ⊕ stores merge in
    /// chunk-index order, so *any* partition folds to the same bits.
    #[test]
    fn random_partitions_reduce_to_serial(
        prog in program(),
        placements in prop::collection::vec((0i32..12, 0i32..12, 1i32..6), 2..10),
        ticks in 1usize..4,
        chunk_rows in 1usize..24,
        threads in 2usize..6,
    ) {
        let build = |threads: usize, chunk_rows: usize| {
            Simulation::builder()
                .source(&prog.source)
                .threads(threads)
                .chunk_rows(chunk_rows)
                .parallel_threshold(1)
                .build()
                .unwrap_or_else(|e| panic!("{e}\n{}", prog.source))
        };
        let mut serial = build(1, 0);
        let mut parallel = build(threads, chunk_rows);
        let mut ids = Vec::new();
        for &(px, py, init) in &placements {
            let vals = [
                ("px", Value::Number(px as f64)),
                ("py", Value::Number(py as f64)),
                (prog.states[0].as_str(), Value::Number(init as f64)),
            ];
            let a = serial.spawn("Gen", &vals).unwrap();
            let b = parallel.spawn("Gen", &vals).unwrap();
            prop_assert_eq!(a, b);
            ids.push(a);
        }
        for _ in 0..ticks {
            serial.tick();
            parallel.tick();
        }
        for &id in &ids {
            for attr in prog.states.iter().map(String::as_str).chain(["seen"]) {
                let a = serial.get(id, attr).unwrap();
                let b = parallel.get(id, attr).unwrap();
                prop_assert_eq!(
                    a, b,
                    "attr {} of {} diverged with {} threads, chunk {}\n{}",
                    attr, id, threads, chunk_rows, prog.source
                );
            }
        }
    }
}
