#![forbid(unsafe_code)]
//! Shared helpers for the integration test suite.
//!
//! The actual tests live in the `[[test]]` targets of this package; this
//! library only hosts utilities they share.

use sgl::{ExecMode, Simulation};

/// Build one simulation per execution mode from the same source.
pub fn both_modes(src: &str) -> (Simulation, Simulation) {
    let compiled = Simulation::builder()
        .source(src)
        .mode(ExecMode::Compiled)
        .build()
        .unwrap_or_else(|e| panic!("{e}"));
    let interp = Simulation::builder()
        .source(src)
        .mode(ExecMode::Interpreted)
        .build()
        .unwrap_or_else(|e| panic!("{e}"));
    (compiled, interp)
}

/// Compare one numeric attribute across all entities of a class.
pub fn assert_attr_eq(a: &Simulation, b: &Simulation, class: &str, attr: &str, tol: f64) {
    let wa = a.world();
    let wb = b.world();
    let ca = wa.class_id(class).unwrap();
    for id in wa.table(ca).ids() {
        let va = wa.get(*id, attr).unwrap().as_number().unwrap();
        let vb = wb.get(*id, attr).unwrap().as_number().unwrap();
        assert!(
            (va - vb).abs() <= tol,
            "{attr} of {id}: compiled {va} vs interpreted {vb}"
        );
    }
}
