//! Property tests for the §3.1 transaction semantics.

use proptest::prelude::*;
use sgl_workloads::market::{build, run_and_audit, MarketMode, MarketParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under atomic execution, no interleaving of purchases and
    /// robberies may ever dupe an item or overdraw an account.
    #[test]
    fn atomic_market_never_violates(
        buyers in 2usize..40,
        items in 1usize..8,
        robbers in 0usize..6,
        seed in 0u64..1000,
        ticks in 1usize..12,
    ) {
        let params = MarketParams {
            buyers,
            items,
            robbers,
            seed,
            mode: MarketMode::Atomic,
            ..MarketParams::default()
        };
        let price = params.price;
        let mut market = build(&params);
        let audit = run_and_audit(&mut market, ticks, price);
        prop_assert_eq!(audit.duping, 0.0, "{:?}", audit);
        prop_assert_eq!(audit.negative_balances, 0, "{:?}", audit);
        prop_assert!(audit.gold_conservation_error.abs() < 1e-9, "{:?}", audit);
    }

    /// The naive mode exhibits duping whenever at least two buyers
    /// contend for the same item (the pigeonhole guarantees contention
    /// when buyers > items).
    #[test]
    fn naive_market_dupes_under_contention(
        seed in 0u64..1000,
    ) {
        let params = MarketParams {
            buyers: 24,
            items: 3,
            robbers: 0,
            seed,
            mode: MarketMode::Naive,
            ..MarketParams::default()
        };
        let price = params.price;
        let mut market = build(&params);
        let audit = run_and_audit(&mut market, 4, price);
        prop_assert!(audit.duping > 0.0, "{:?}", audit);
    }
}

#[test]
fn committed_transactions_report_in_stats() {
    let params = MarketParams {
        buyers: 10,
        items: 2,
        robbers: 0,
        mode: MarketMode::Atomic,
        ..MarketParams::default()
    };
    let mut market = build(&params);
    market.sim.tick();
    let txn = market.sim.last_stats().txn;
    assert!(txn.issued >= 10, "{txn:?}");
    // Per item at most one purchase commits per tick (write-write
    // conflicts on the owner ref abort the rest).
    assert!(txn.committed <= 2, "{txn:?}");
    assert_eq!(
        txn.issued,
        txn.committed + txn.aborted_conflict + txn.aborted_constraint,
        "{txn:?}"
    );
}

#[test]
fn multitick_and_atomic_agree_on_transfer_count() {
    // Both protocols serialize ownership transfers; over enough ticks
    // with no robbery every buyer that can afford an item gets one.
    for mode in [MarketMode::MultiTick, MarketMode::Atomic] {
        let params = MarketParams {
            buyers: 12,
            items: 4,
            robbers: 0,
            mode,
            ..MarketParams::default()
        };
        let price = params.price;
        let mut market = build(&params);
        let audit = run_and_audit(&mut market, 16, price);
        assert!(
            audit.transfers >= 4,
            "{} should transfer each item at least once: {audit:?}",
            mode.name()
        );
        assert_eq!(audit.duping, 0.0, "{}: {audit:?}", mode.name());
    }
}
