//! End-to-end pathfinding component tests (§2.2: "AI planning, such as
//! pathfinding" as an update component).

use sgl::{ObstacleGrid, PathfindSpec, PhysicsSpec, Simulation, Value};

/// Seeker: scripts declare a goal; the pathfind component owns the
/// waypoint; movement steers toward the waypoint through physics.
const SOURCE: &str = r#"
class Seeker {
state:
  number x = 1;
  number y = 1;
  number wx = 1;
  number wy = 1;
  number goalX = 1;
  number goalY = 1;
effects:
  number vx : avg;
  number vy : avg;
  number gx : min;
  number gy : min;
update:
  x by physics;
  y by physics;
  wx by pathfind;
  wy by pathfind;

script plan {
  gx <- goalX;
  gy <- goalY;
}

script steer {
  let dx = wx - x;
  let dy = wy - y;
  let d = max(dist(0, 0, dx, dy), 0.001);
  vx <- min(d, 1) * dx / d;
  vy <- min(d, 1) * dy / d;
}
}
"#;

fn build(grid: ObstacleGrid) -> Simulation {
    Simulation::builder()
        .source(SOURCE)
        .physics(PhysicsSpec::simple("Seeker"))
        .pathfind(PathfindSpec {
            class: "Seeker".into(),
            pos: ("x".into(), "y".into()),
            goal_effect: ("gx".into(), "gy".into()),
            waypoint: ("wx".into(), "wy".into()),
            cell_size: 2.0,
            grid,
        })
        .build()
        .unwrap_or_else(|e| panic!("{e}"))
}

#[test]
fn seeker_reaches_goal_in_open_field() {
    let mut sim = build(ObstacleGrid::open(16, 16));
    let id = sim
        .spawn(
            "Seeker",
            &[
                ("goalX", Value::Number(21.0)),
                ("goalY", Value::Number(21.0)),
            ],
        )
        .unwrap();
    sim.run(80);
    let x = sim.get(id, "x").unwrap().as_number().unwrap();
    let y = sim.get(id, "y").unwrap().as_number().unwrap();
    assert!(
        (x - 21.0).abs() < 2.5 && (y - 21.0).abs() < 2.5,
        "seeker should approach the goal, got ({x:.1}, {y:.1})"
    );
}

#[test]
fn seeker_routes_around_wall() {
    // A wall at cell column 5 (world x ≈ 10..12) with a gap at the top.
    let mut grid = ObstacleGrid::open(16, 16);
    for cy in 0..14 {
        grid.block(5, cy);
    }
    let mut sim = build(grid);
    let id = sim
        .spawn(
            "Seeker",
            &[
                ("goalX", Value::Number(25.0)),
                ("goalY", Value::Number(1.0)),
            ],
        )
        .unwrap();
    let mut max_y: f64 = 0.0;
    for _ in 0..250 {
        sim.tick();
        max_y = max_y.max(sim.get(id, "y").unwrap().as_number().unwrap());
    }
    let x = sim.get(id, "x").unwrap().as_number().unwrap();
    // The direct line is blocked; the seeker must detour through the gap
    // (high y) and still arrive.
    assert!(
        max_y > 26.0,
        "must detour through the gap: max_y={max_y:.1}"
    );
    assert!(x > 22.0, "should end near the goal: x={x:.1}");
}

#[test]
fn unreachable_goal_holds_position() {
    // Goal sealed behind a full box.
    let mut grid = ObstacleGrid::open(16, 16);
    for c in 8..12 {
        grid.block(c, 8);
        grid.block(c, 11);
    }
    for r in 8..12 {
        grid.block(8, r);
        grid.block(11, r);
    }
    let mut sim = build(grid);
    let id = sim
        .spawn(
            "Seeker",
            &[
                ("goalX", Value::Number(19.0)),
                ("goalY", Value::Number(19.0)),
            ],
        )
        .unwrap();
    sim.run(30);
    // Waypoint degrades to "hold position": the seeker stays near start.
    let x = sim.get(id, "x").unwrap().as_number().unwrap();
    let y = sim.get(id, "y").unwrap().as_number().unwrap();
    assert!(
        x < 8.0 && y < 8.0,
        "sealed goal must not be approached: ({x:.1}, {y:.1})"
    );
}
