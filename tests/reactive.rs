//! E7: reactive handlers (§3.2) — "the simplest version of this feature
//! would simply be syntactic sugar for the sequence of conditionals".
//! A `when` handler and the equivalent leading-conditional script must
//! produce the same behaviour (with the handler's one-tick seeding
//! latency accounted for).

use sgl::{Simulation, Value};

/// Reactive: the engine evaluates the condition after the update phase
/// and seeds the effect for the next tick.
const HANDLER: &str = r#"
class Npc {
state:
  number hp = 10;
  number fleeing = 0;
effects:
  number damage : sum;
  number flee : max = 0;
update:
  hp = hp - damage;
  fleeing = fleeing + flee;
script bleed {
  damage <- 1;
}
when (hp < 5) {
  flee <- 1;
}
}
"#;

/// Inlined: the script tests the condition at the start of the next
/// tick — exactly the "large number of if-then-else statements" the
/// paper says handlers replace.
const INLINED: &str = r#"
class Npc {
state:
  number hp = 10;
  number fleeing = 0;
effects:
  number damage : sum;
  number flee : max = 0;
update:
  hp = hp - damage;
  fleeing = fleeing + flee;
script bleed {
  damage <- 1;
}
script check_flee {
  if (hp < 5) {
    flee <- 1;
  }
}
}
"#;

#[test]
fn handler_equals_inlined_conditionals() {
    let mut h = Simulation::builder().source(HANDLER).build().unwrap();
    let mut i = Simulation::builder().source(INLINED).build().unwrap();
    let a = h.spawn("Npc", &[]).unwrap();
    let b = i.spawn("Npc", &[]).unwrap();
    for tick in 0..10 {
        h.tick();
        i.tick();
        assert_eq!(
            h.get(a, "fleeing").unwrap(),
            i.get(b, "fleeing").unwrap(),
            "tick {tick}"
        );
        assert_eq!(h.get(a, "hp").unwrap(), i.get(b, "hp").unwrap());
    }
    // And the behaviour actually fired.
    assert!(h.get(a, "fleeing").unwrap().as_number().unwrap() > 0.0);
}

#[test]
fn handler_sees_update_component_output() {
    // §3.2's motivation: "the output of the physics engine often does
    // not correspond … scripts also need to be able to determine what
    // happened during the previous tick". A handler watching a
    // physics-owned variable reacts to the *clamped* position.
    let src = r#"
class Ball {
state:
  number x = 0;
  number y = 0;
  number bounced = 0;
effects:
  number vx : avg;
  number vy : avg;
  number hitWall : max = 0;
update:
  bounced = bounced + hitWall;
  x by physics;
  y by physics;
script push {
  vx <- 5;
}
when (x >= 10) {
  hitWall <- 1;
}
}
"#;
    let mut physics = sgl::PhysicsSpec::simple("Ball");
    physics.bounds = Some((0.0, 0.0, 10.0, 10.0));
    let mut sim = Simulation::builder()
        .source(src)
        .physics(physics)
        .build()
        .unwrap();
    let id = sim.spawn("Ball", &[]).unwrap();
    sim.run(5);
    // x clamps at 10 after 2 ticks; handler seeds from tick 2 onward.
    assert_eq!(sim.get(id, "x").unwrap(), Value::Number(10.0));
    assert!(sim.get(id, "bounced").unwrap().as_number().unwrap() >= 2.0);
}

#[test]
fn multiple_handlers_fire_independently() {
    let src = r#"
class A {
state:
  number v = 0;
  number lowCount = 0;
  number highCount = 0;
effects:
  number bump : sum;
  number low : max = 0;
  number high : max = 0;
update:
  v = v + bump;
  lowCount = lowCount + low;
  highCount = highCount + high;
script grow {
  bump <- 1;
}
when (v < 3) {
  low <- 1;
}
when (v > 6) {
  high <- 1;
}
}
"#;
    let mut sim = Simulation::builder().source(src).build().unwrap();
    let id = sim.spawn("A", &[]).unwrap();
    sim.run(10);
    let low = sim.get(id, "lowCount").unwrap().as_number().unwrap();
    let high = sim.get(id, "highCount").unwrap().as_number().unwrap();
    assert!(low >= 2.0, "low fired early: {low}");
    assert!(high >= 2.0, "high fired late: {high}");
}
