//! Hostile-network harness for the readiness transport: peers that
//! stall mid-frame, vanish without FIN, storm the accept loop, or stop
//! reading entirely. Every scenario runs on 1-node and 4-node clusters
//! and over both readiness backends (epoll and the poll(2) fallback),
//! and always asserts the blast radius is exactly the offender: every
//! surviving client's replica stays value-identical to the server's
//! subscribed region.
#![cfg(unix)]

use std::io::Write;
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use sgl::{ClassId, ClientReplica, EntityId, InterestSpec, Simulation, Value};
use sgl_dist::{DistConfig, DistSim};
use sgl_net::transport::{
    frame_msg, hello_payload, read_msg, write_msg, MSG_ERROR, MSG_HELLO, PROTOCOL_VERSION,
};
use sgl_net::{IoConfig, ListenerConfig, NetClient, NetListener, ReplicationSource};

const GAME: &str = r#"
class Unit {
state:
  number x = 0;
  number dx = 0;
  number hp = 10;
update:
  x = x + dx;
}
"#;

/// The (cluster size, I/O config) matrix every scenario runs over.
fn matrix() -> Vec<(usize, IoConfig)> {
    let mut m = Vec::new();
    for shards in [1usize, 4] {
        m.push((shards, IoConfig::readiness(2)));
        m.push((shards, IoConfig::poll_fallback(2)));
    }
    m
}

struct Cluster {
    sim: DistSim,
    listener: NetListener,
    ids: Vec<EntityId>,
    class: ClassId,
}

/// A `rows`-entity cluster (x spread over [0, 200), dx = 0 so regions
/// are stable) behind a listener in the given I/O mode.
fn cluster(shards: usize, io: IoConfig, rows: usize, max_queued: usize) -> Cluster {
    let game = Simulation::builder()
        .source(GAME)
        .build()
        .unwrap()
        .game()
        .clone();
    let mut sim = DistSim::new(game, DistConfig::new(shards, "x", (0.0, 200.0), 8.0)).unwrap();
    let mut ids = Vec::new();
    for i in 0..rows {
        ids.push(
            sim.spawn("Unit", &[("x", Value::Number((i % 200) as f64 + 0.5))])
                .unwrap(),
        );
    }
    let catalog = sim.game().catalog.clone();
    let class = catalog.class_by_name("Unit").unwrap().id;
    let cfg = ListenerConfig {
        io,
        max_queued,
        ..ListenerConfig::default()
    };
    let listener = NetListener::bind_with_config("127.0.0.1:0", catalog, cfg).unwrap();
    Cluster {
        sim,
        listener,
        ids,
        class,
    }
}

/// Touch every row's hp so each tick ships a fat delta frame.
fn churn(sim: &mut DistSim, ids: &[EntityId], round: usize) {
    for (i, &id) in ids.iter().enumerate() {
        sim.set(id, "hp", &Value::Number((round * 1000 + i) as f64))
            .unwrap();
    }
}

/// The authoritative subscribed region of `class` on any source.
fn region<S: ReplicationSource>(
    src: &S,
    class: ClassId,
    spec: &InterestSpec,
) -> Vec<(EntityId, Vec<Value>)> {
    let mut rows = Vec::new();
    for k in 0..src.shards() {
        let world = src.shard_world(k);
        let table = world.table(class);
        let col = table.schema().index_of(&spec.attr).unwrap();
        let xs = table.column(col).f64();
        for (row, &id) in table.ids().iter().enumerate() {
            if spec.contains(xs[row]) && !world.is_ghost(class, id) {
                let values = (0..table.schema().len())
                    .map(|ci| table.column(ci).get(row))
                    .collect();
                rows.push((id, values));
            }
        }
    }
    rows.sort_unstable_by_key(|(id, _)| *id);
    rows
}

fn assert_identical<S: ReplicationSource>(
    replica: &ClientReplica,
    src: &S,
    class: ClassId,
    spec: &InterestSpec,
    ctx: &str,
) {
    let expected = region(src, class, spec);
    assert_eq!(
        replica.population(),
        expected.len(),
        "population diverged ({ctx})"
    );
    for (id, values) in &expected {
        assert_eq!(
            replica.row(class, *id),
            Some(values.as_slice()),
            "mirror of {id:?} diverged ({ctx})"
        );
    }
}

/// Open one client per spec and complete all handshakes from this
/// thread.
fn connect_all(listener: &mut NetListener, specs: &[InterestSpec]) -> Vec<NetClient> {
    let addr = listener.local_addr().unwrap();
    let catalog = listener.catalog().clone();
    let before = listener.session_count();
    let pending: Vec<_> = specs
        .iter()
        .map(|s| NetClient::start_connect(addr, catalog.clone(), s).unwrap())
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while listener.session_count() < before + specs.len() {
        listener.accept_pending().unwrap();
        assert!(Instant::now() < deadline, "handshakes stalled");
        std::thread::sleep(Duration::from_millis(1));
    }
    pending.into_iter().map(|p| p.finish().unwrap()).collect()
}

/// Handshake a raw socket into a session (the offender's side of every
/// scenario) and swallow the WELCOME.
fn raw_session(listener: &mut NetListener, spec: &InterestSpec) -> TcpStream {
    let addr = listener.local_addr().unwrap();
    let mut raw = TcpStream::connect(addr).unwrap();
    write_msg(
        &mut raw,
        MSG_HELLO,
        &hello_payload(PROTOCOL_VERSION, &spec.to_string()),
    )
    .unwrap();
    let want = listener.session_count() + 1;
    let deadline = Instant::now() + Duration::from_secs(10);
    while listener.session_count() < want {
        listener.accept_pending().unwrap();
        assert!(Instant::now() < deadline, "raw handshake stalled");
        std::thread::sleep(Duration::from_millis(1));
    }
    let (kind, _) = read_msg(&mut raw, 1 << 20).unwrap();
    assert_eq!(kind, sgl_net::transport::MSG_WELCOME);
    raw
}

/// One canonical server turn: churn, drain, step, pump.
fn turn(c: &mut Cluster, round: usize) {
    churn(&mut c.sim, &c.ids, round);
    c.listener.accept_pending().unwrap();
    c.listener.drain_inputs(&mut c.sim);
    c.sim.step();
    c.listener.pump_frames(&c.sim);
}

/// A reader that stalls mid-stream: the client stops reading while the
/// server keeps shipping fat frames every tick, until the server's
/// send queue visibly backs up (the stream is cut at an arbitrary byte
/// — overwhelmingly inside a frame, partial length prefix included).
/// The stalled session must not be dropped (it is under `max_queued`),
/// the other clients must stream in lockstep throughout, and when the
/// reader resumes it must decode every queued frame losslessly and
/// converge on the authoritative region.
#[test]
fn slow_reader_stalls_only_itself_and_resumes_losslessly() {
    for (shards, io) in matrix() {
        let ctx = format!("{shards}-node, {io:?}");
        let mut c = cluster(shards, io, 512, 256 * 1024 * 1024);
        let specs: Vec<InterestSpec> = [
            "Unit where x in [0, 200]",
            "Unit where x in [20, 80]",
            "Unit where x in [100, 180]",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        let mut clients = connect_all(&mut c.listener, &specs);
        // Client 0 never reads. Survivors stream in lockstep.
        let mut rounds = 0usize;
        let mut saw_backlog = false;
        while rounds < 4000 && !saw_backlog {
            turn(&mut c, rounds);
            rounds += 1;
            for (ci, client) in clients.iter_mut().enumerate().skip(1) {
                client.recv_frame().unwrap();
                if rounds.is_multiple_of(64) {
                    assert_identical(client.replica(), &c.sim, c.class, &specs[ci], &ctx);
                }
            }
            saw_backlog |= c.listener.last_stats().backlog_bytes > 0;
        }
        assert!(saw_backlog, "server never saw backpressure ({ctx})");
        assert_eq!(
            c.listener.session_count(),
            3,
            "a slow reader under max_queued must not be dropped ({ctx})"
        );
        // Resume: every queued frame decodes, in order, losslessly.
        // (Readiness shards bleed the backlog on writability without
        // the server calling flush.)
        for _ in 0..rounds {
            clients[0].recv_frame().unwrap();
        }
        assert_identical(clients[0].replica(), &c.sim, c.class, &specs[0], &ctx);
        for (ci, client) in clients.iter_mut().enumerate().skip(1) {
            assert_identical(client.replica(), &c.sim, c.class, &specs[ci], &ctx);
        }
    }
}

/// A peer that vanishes without FIN: SO_LINGER(0) turns the close into
/// a RST, so the server sees a connection reset, never an orderly EOF.
/// The reset session must be detected and detached; the survivors
/// stream identically before, during, and after.
#[test]
fn half_open_peer_is_detected_and_only_it_is_dropped() {
    for (shards, io) in matrix() {
        let ctx = format!("{shards}-node, {io:?}");
        let mut c = cluster(shards, io, 64, 8 * 1024 * 1024);
        let specs: Vec<InterestSpec> = ["Unit where x in [0, 200]", "Unit where x in [50, 150]"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let mut clients = connect_all(&mut c.listener, &specs);
        let victim_spec: InterestSpec = "Unit where x in [0, 200]".parse().unwrap();
        let raw = raw_session(&mut c.listener, &victim_spec);
        assert_eq!(c.listener.session_count(), 3);

        // Vanish: RST instead of FIN.
        epoll::shim::set_linger_rst(raw.as_raw_fd()).unwrap();
        drop(raw);

        let deadline = Instant::now() + Duration::from_secs(10);
        let mut round = 0;
        while c.listener.session_count() > 2 {
            assert!(
                Instant::now() < deadline,
                "reset session never detected ({ctx})"
            );
            turn(&mut c, round);
            round += 1;
            for client in clients.iter_mut() {
                client.recv_frame().unwrap();
            }
        }
        // Survivors unharmed, before and after the detection tick.
        for _ in 0..5 {
            turn(&mut c, round);
            round += 1;
            for (ci, client) in clients.iter_mut().enumerate() {
                client.recv_frame().unwrap();
                assert_identical(client.replica(), &c.sim, c.class, &specs[ci], &ctx);
            }
        }
        assert_eq!(c.listener.session_count(), 2, "{ctx}");
    }
}

/// A connect/disconnect storm riding the live tick loop: every round a
/// wave of peers connects and dies in a different ugly way — silent
/// close before HELLO, a partial HELLO then close, and a handshaken
/// session killed by RST one round later — while two durable clients
/// stream in lockstep. Nothing leaks: pending and session counts return
/// to exactly the survivors, which never missed a beat.
#[test]
fn connect_disconnect_storm_leaves_survivors_untouched() {
    for (shards, io) in matrix() {
        let ctx = format!("{shards}-node, {io:?}");
        let mut c = cluster(shards, io, 64, 8 * 1024 * 1024);
        let addr = c.listener.local_addr().unwrap();
        let specs: Vec<InterestSpec> = ["Unit where x in [0, 200]", "Unit where x in [30, 90]"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let mut clients = connect_all(&mut c.listener, &specs);
        let hello = frame_msg(
            MSG_HELLO,
            &hello_payload(PROTOCOL_VERSION, "Unit where x in [0, 200]"),
        );

        let mut zombie: Option<TcpStream> = None;
        for round in 0..40 {
            // Wave 1: connects and closes without a word.
            drop(TcpStream::connect(addr).unwrap());
            // Wave 2: half a HELLO, then gone.
            let mut partial = TcpStream::connect(addr).unwrap();
            partial.write_all(&hello[..7]).unwrap();
            drop(partial);
            // Wave 3: a full handshake attempt left to rot; the
            // previous round's is reset mid-whatever-it-was-doing.
            if let Some(z) = zombie.take() {
                epoll::shim::set_linger_rst(z.as_raw_fd()).unwrap();
                drop(z);
            }
            let mut full = TcpStream::connect(addr).unwrap();
            full.write_all(&hello).unwrap();
            zombie = Some(full);

            turn(&mut c, round);
            for (ci, client) in clients.iter_mut().enumerate() {
                client.recv_frame().unwrap();
                assert_identical(client.replica(), &c.sim, c.class, &specs[ci], &ctx);
            }
        }
        if let Some(z) = zombie.take() {
            epoll::shim::set_linger_rst(z.as_raw_fd()).unwrap();
            drop(z);
        }
        // Let the wreckage drain: exactly the two survivors remain.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut round = 40;
        while c.listener.session_count() > 2 || c.listener.pending_count() > 0 {
            assert!(
                Instant::now() < deadline,
                "storm debris never drained: {} sessions, {} pending ({ctx})",
                c.listener.session_count(),
                c.listener.pending_count()
            );
            turn(&mut c, round);
            round += 1;
            for client in clients.iter_mut() {
                client.recv_frame().unwrap();
            }
        }
        for (ci, client) in clients.iter_mut().enumerate() {
            assert_identical(client.replica(), &c.sim, c.class, &specs[ci], &ctx);
        }
    }
}

/// A client that stops reading entirely must be disconnected once its
/// send queue crosses `max_queued` — and nobody else pays: survivors
/// stream identically through the offender's entire decline.
#[test]
fn overflow_disconnects_exactly_the_non_reader() {
    for (shards, io) in matrix() {
        let ctx = format!("{shards}-node, {io:?}");
        let mut c = cluster(shards, io, 512, 192 * 1024);
        let specs: Vec<InterestSpec> = ["Unit where x in [0, 200]", "Unit where x in [10, 60]"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let mut clients = connect_all(&mut c.listener, &specs);
        let mute_spec: InterestSpec = "Unit where x in [0, 200]".parse().unwrap();
        // Handshakes, then never reads again.
        let mute = raw_session(&mut c.listener, &mute_spec);
        assert_eq!(c.listener.session_count(), 3);

        let mut saw_backlog = false;
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut round = 0;
        while c.listener.session_count() > 2 {
            assert!(
                Instant::now() < deadline,
                "overflowing session never dropped ({ctx})"
            );
            turn(&mut c, round);
            round += 1;
            saw_backlog |= c.listener.last_stats().backlog_bytes > 0;
            for client in clients.iter_mut() {
                client.recv_frame().unwrap();
            }
        }
        assert!(
            saw_backlog,
            "queued bytes must be accounted before overflow ({ctx})"
        );
        // Survivors unharmed through and after the offender's removal.
        for _ in 0..5 {
            turn(&mut c, round);
            round += 1;
            for (ci, client) in clients.iter_mut().enumerate() {
                client.recv_frame().unwrap();
                assert_identical(client.replica(), &c.sim, c.class, &specs[ci], &ctx);
            }
        }
        // The offender's stream ends (best-effort overflow notice, then
        // the close) — it must not hang and must not see a 4th session.
        let mut dead = mute;
        dead.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        loop {
            match read_msg(&mut dead, 1 << 24) {
                Ok((kind, payload)) if kind == MSG_ERROR => {
                    assert!(
                        String::from_utf8_lossy(&payload).contains("overflow"),
                        "{ctx}"
                    );
                    break;
                }
                Ok(_) => continue, // queued frames from before the cut
                Err(_) => break,   // notice raced the close: fine
            }
        }
    }
}
