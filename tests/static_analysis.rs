//! The static analysis pass end to end: shipped sources are clean,
//! the halo-safety classification is sound (halo-safe ⇒ bit-identical
//! across node counts), and the owner-local `atomic` admission holds
//! (the market's distributable variant matches single-node exactly).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sgl::{Simulation, Value};
use sgl_analysis::{analyze, analyze_cluster, ClusterSpec, Locality};
use sgl_dist::{DistConfig, DistSim};
use sgl_workloads::market::{atomic_local_population, source, MarketMode, MarketParams};

fn compile(src: &str) -> sgl::CompiledGame {
    // Route through the public facade so the test exercises the same
    // path applications use.
    let sim = Simulation::builder().source(src).build().unwrap();
    sim.game().clone()
}

/// The analyzer must not cry wolf on good code: every SGL source the
/// repository ships — workloads and examples — analyzes with zero
/// findings.
#[test]
fn shipped_sources_have_zero_findings() {
    let mut sources: Vec<(String, String)> = sgl_workloads::shipped_sources()
        .into_iter()
        .map(|(n, s)| (format!("workload:{n}"), s))
        .collect();
    sources.extend(
        sgl_examples::shipped_sources()
            .into_iter()
            .map(|(n, s)| (format!("example:{n}"), s.to_string())),
    );
    assert!(sources.len() >= 10, "the sweep must cover the fleet");
    for (name, src) in sources {
        let game = compile(&src);
        let report = analyze(&game);
        assert!(
            report.is_clean(),
            "{name} has findings:\n{}",
            report.diags.render(&src)
        );
    }
}

/// The MMO world deploys on clusters with halo 15 — the analyzer must
/// prove the roam rule halo-safe at exactly that radius, with zero
/// findings against the shipped layout.
#[test]
fn mmo_world_is_halo_safe_at_its_shipped_halo() {
    let game = compile(sgl_examples::MMO_WORLD);
    let spec = ClusterSpec {
        nodes: 4,
        partition_attr: "x".into(),
        range: (0.0, 800.0),
        halo: 15.0,
    };
    let report = analyze_cluster(&game, &spec);
    assert!(
        report.is_clean(),
        "{}",
        report.diags.render(sgl_examples::MMO_WORLD)
    );
    let roam = report
        .rules
        .iter()
        .find(|r| r.name == "Player/roam#0")
        .expect("roam rule");
    assert_eq!(roam.locality, Some(Locality::HaloSafe { radius: 15.0 }));
}

/// The distributable market variant: owner-local `atomic` regions are
/// admitted on a multi-node cluster and arbitrate exactly like the
/// single-node transaction manager — gold and stock match bit for bit,
/// while traders drift across stripe boundaries.
#[test]
fn atomic_local_market_is_bit_exact_on_clusters() {
    let params = MarketParams {
        mode: MarketMode::AtomicLocal,
        buyers: 24,
        robbers: 6,
        gold: 45.0,
        seed: 23,
        ..MarketParams::default()
    };
    let src = source(MarketMode::AtomicLocal);
    for nodes in [2usize, 4] {
        let mut cluster = DistSim::new(
            compile(&src),
            DistConfig::new(nodes, "x", (0.0, 100.0), 4.0),
        )
        .expect("owner-local atomic market must deploy multi-node");
        let mut reference = Simulation::builder().source(&src).build().unwrap();
        let mut ids = Vec::new();
        for row in atomic_local_population(&params) {
            let a = cluster.spawn("Trader", &row).unwrap();
            let b = reference.spawn("Trader", &row).unwrap();
            assert_eq!(a, b, "id allocation must coincide");
            ids.push(a);
        }
        for _ in 0..10 {
            cluster.step();
            reference.tick();
        }
        for &id in &ids {
            for attr in ["x", "gold", "stock"] {
                assert_eq!(
                    cluster.get(id, attr).unwrap(),
                    reference.get(id, attr).unwrap(),
                    "{attr} of {id} diverged on {nodes} nodes"
                );
            }
        }
        let report = cluster.analysis().expect("analysis report");
        assert!(
            report
                .rules
                .iter()
                .any(|r| r.locality == Some(Locality::OwnerLocal)),
            "{}",
            report.render_sets()
        );
    }
}

/// A neighbourhood game whose interaction radius is the constant `r`:
/// integral contributions only, so halo-safe ⇒ bit-exact distribution.
fn radius_game(r: u32) -> String {
    format!(
        "class U {{\n\
         state:\n  number x = 0;\n  number vx = 1;\n  number seen = 0;\n\
         effects:\n  number near : sum;\n  number poke : sum;\n\
         update:\n  x = x + vx;\n  seen = seen + near + poke;\n\
         script sense {{\n\
           accum number c with sum over U u from U {{\n\
             if (u.x >= x - {r} && u.x <= x + {r}) {{\n\
               c <- 1;\n\
               u.poke <- 1;\n\
             }}\n\
           }} in {{\n\
             near <- c;\n\
           }}\n\
         }}\n\
         }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Soundness of the halo-safety classification: whenever the
    /// analyzer classifies a rule `HaloSafe` against a layout, running
    /// that layout is bit-identical to a single node — for any radius
    /// within the halo and any population.
    #[test]
    fn halo_safe_rules_are_bit_identical_across_node_counts(
        r in 0u32..=12,
        n in 10usize..60,
        seed in 0u64..500,
    ) {
        let src = radius_game(r);
        let game = compile(&src);
        let spec = ClusterSpec {
            nodes: 4,
            partition_attr: "x".into(),
            range: (0.0, 200.0),
            halo: 12.0,
        };
        let report = analyze_cluster(&game, &spec);
        prop_assert!(report.is_clean(), "{}", report.diags.render(&src));
        let rule = report.rules.iter().find(|x| x.name == "U/sense#0").unwrap();
        prop_assert_eq!(
            rule.locality.clone(),
            Some(Locality::HaloSafe { radius: r as f64 })
        );

        let mut cluster = DistSim::new(
            compile(&src),
            DistConfig::new(4, "x", (0.0, 200.0), 12.0),
        )
        .unwrap();
        let mut reference = Simulation::builder().source(&src).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ids = Vec::new();
        for _ in 0..n {
            let x = Value::Number(rng.gen_range(0.0..200.0));
            let a = cluster.spawn("U", &[("x", x.clone())]).unwrap();
            let b = reference.spawn("U", &[("x", x)]).unwrap();
            prop_assert_eq!(a, b);
            ids.push(a);
        }
        for _ in 0..6 {
            cluster.step();
            reference.tick();
        }
        for &id in &ids {
            for attr in ["x", "seen"] {
                prop_assert_eq!(
                    cluster.get(id, attr).unwrap(),
                    reference.get(id, attr).unwrap(),
                    "{} of {} diverged", attr, id
                );
            }
        }
    }
}
