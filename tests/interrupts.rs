//! §3.2 interruptible intentions: `when (…) restart;` resets the hidden
//! program counter of multi-tick scripts ("we need a mechanism to
//! interrupt multi-tick scripts and reset the program counter").
//!
//! A handler *without* `restart` is the resumption model (the intention
//! continues); with it, the termination model (the intention restarts).
//! Both executors must agree on every observable.

use sgl::{ExecMode, Simulation, Value};
use sgl_tests::{assert_attr_eq, both_modes};

/// A guard on a three-step patrol. When badly hurt it heals itself *and*
/// abandons the patrol (restart) — the paper's "interrupt this in order
/// to respond to an attack".
const GUARD: &str = r#"
class Guard {
state:
  number hp = 10;
  number atStep = 0;
  number heals = 0;
effects:
  number step : max = 0;
  number dmg : sum;
  number cured : sum;
update:
  hp = hp - dmg + cured;
  atStep = step;
  heals = heals + cured;
script patrol {
  step <- 1;
  waitNextTick;
  step <- 2;
  waitNextTick;
  step <- 3;
}
when (hp < 5) { cured <- 10; } restart;
}
"#;

fn steps_over(sim: &mut Simulation, id: sgl::EntityId, ticks: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(ticks);
    for _ in 0..ticks {
        sim.tick();
        out.push(sim.get(id, "atStep").unwrap().as_number().unwrap());
    }
    out
}

/// Unhurt, the patrol cycles 1→2→3 forever (end-of-script pc reset).
#[test]
fn patrol_cycles_without_interrupts() {
    let mut sim = Simulation::builder().source(GUARD).build().unwrap();
    let id = sim.spawn("Guard", &[]).unwrap();
    assert_eq!(
        steps_over(&mut sim, id, 7),
        vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]
    );
}

/// A mid-patrol wound fires the handler: the next tick re-enters
/// segment 0 instead of continuing to segment 2, and the heal lands.
#[test]
fn interrupt_resets_the_intention() {
    let mut sim = Simulation::builder().source(GUARD).build().unwrap();
    let id = sim.spawn("Guard", &[]).unwrap();
    sim.tick(); // segment 0 ran; pc = 1
    assert_eq!(sim.get(id, "atStep").unwrap(), Value::Number(1.0));

    sim.set(id, "hp", &Value::Number(1.0)).unwrap(); // ambush between ticks
    sim.tick(); // segment 1 runs; handler fires after update: restart + heal seed
    assert_eq!(sim.get(id, "atStep").unwrap(), Value::Number(2.0));
    assert_eq!(sim.last_stats().interrupts, 1);

    sim.tick(); // back to segment 0, heal applied
    assert_eq!(sim.get(id, "atStep").unwrap(), Value::Number(1.0));
    assert_eq!(sim.get(id, "hp").unwrap(), Value::Number(11.0));
    assert_eq!(sim.get(id, "heals").unwrap(), Value::Number(10.0));
}

/// Compiled and interpreted executors agree tick-by-tick across a
/// schedule of ambushes.
#[test]
fn interrupts_equivalent_across_executors() {
    let (mut compiled, mut interp) = both_modes(GUARD);
    let n = 6;
    for sim in [&mut compiled, &mut interp] {
        for _ in 0..n {
            sim.spawn("Guard", &[]).unwrap();
        }
    }
    let guard = compiled.world().class_id("Guard").unwrap();
    let ids: Vec<_> = compiled.world().table(guard).ids().to_vec();

    for tick in 0..10 {
        // Ambush a rotating victim every other tick.
        if tick % 2 == 0 {
            let victim = ids[(tick / 2) % ids.len()];
            for sim in [&mut compiled, &mut interp] {
                sim.set(victim, "hp", &Value::Number(1.0)).unwrap();
            }
        }
        compiled.tick();
        interp.tick();
        for attr in ["hp", "atStep", "heals"] {
            assert_attr_eq(&compiled, &interp, "Guard", attr, 0.0);
        }
    }
}

/// `restart name;` interrupts only the named intention; sibling scripts
/// keep their program counters.
#[test]
fn named_restart_is_selective() {
    const TWO_INTENTIONS: &str = r#"
class Npc {
state:
  number alarm = 0;
  number aStep = 0;
  number bStep = 0;
effects:
  number sa : max = 0;
  number sb : max = 0;
update:
  aStep = sa;
  bStep = sb;
script walk {
  sa <- 1;
  waitNextTick;
  sa <- 2;
  waitNextTick;
  sa <- 3;
}
script chant {
  sb <- 1;
  waitNextTick;
  sb <- 2;
  waitNextTick;
  sb <- 3;
}
when (alarm > 0) restart walk;
}
"#;
    let mut sim = Simulation::builder()
        .source(TWO_INTENTIONS)
        .build()
        .unwrap();
    let id = sim.spawn("Npc", &[]).unwrap();
    sim.tick(); // both at step 1
    sim.set(id, "alarm", &Value::Number(1.0)).unwrap();
    sim.tick(); // both at step 2; handler restarts walk only
    assert_eq!(sim.get(id, "aStep").unwrap(), Value::Number(2.0));
    assert_eq!(sim.get(id, "bStep").unwrap(), Value::Number(2.0));
    sim.set(id, "alarm", &Value::Number(0.0)).unwrap();
    sim.tick(); // walk re-entered segment 0; chant proceeded to 3
    assert_eq!(sim.get(id, "aStep").unwrap(), Value::Number(1.0));
    assert_eq!(sim.get(id, "bStep").unwrap(), Value::Number(3.0));
}

/// The bare interrupt form parses without a body and seeds nothing.
#[test]
fn bare_restart_form_compiles() {
    const BARE: &str = r#"
class Npc {
state:
  number panic = 0;
  number at = 0;
effects:
  number s : max = 0;
update:
  at = s;
script go {
  s <- 1;
  waitNextTick;
  s <- 2;
}
when (panic > 0) restart;
}
"#;
    let mut sim = Simulation::builder()
        .source(BARE)
        .mode(ExecMode::Interpreted)
        .build()
        .unwrap();
    let id = sim.spawn("Npc", &[]).unwrap();
    sim.tick();
    sim.set(id, "panic", &Value::Number(1.0)).unwrap();
    sim.tick(); // s<-2 ran; restart fires
    assert_eq!(sim.get(id, "at").unwrap(), Value::Number(2.0));
    sim.tick(); // re-entered segment 0 (would otherwise stay cycling 1,2,1…)
    assert_eq!(sim.get(id, "at").unwrap(), Value::Number(1.0));
}

/// Restart target validation happens at compile time.
#[test]
fn restart_diagnostics() {
    let unknown = Simulation::builder()
        .source(
            r#"
class A {
state:
  number x = 0;
effects:
  number e : sum;
script s { e <- 1; waitNextTick; e <- 2; }
when (x > 0) restart nosuch;
}
"#,
        )
        .build();
    let msg = format!("{}", unknown.err().expect("unknown script must fail"));
    assert!(msg.contains("nosuch"), "{msg}");

    let single_tick = Simulation::builder()
        .source(
            r#"
class A {
state:
  number x = 0;
effects:
  number e : sum;
script s { e <- 1; }
when (x > 0) restart;
}
"#,
        )
        .build();
    let msg = format!("{}", single_tick.err().expect("nothing to restart"));
    assert!(msg.contains("multi-tick"), "{msg}");
}
