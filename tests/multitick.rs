//! E6: `waitNextTick` is syntactic sugar — "there is a direct
//! translation between multi-tick programs using waitNextTick and
//! standard single-tick SGL programs" (§3.2). The compiler's lowering
//! and a hand-written explicit state machine must behave identically.

use sgl::{Simulation, Value};
use sgl_tests::assert_attr_eq;

/// Sugared: move → pick up → attack, with waits (the paper's example).
const SUGARED: &str = r#"
class Npc {
state:
  number x = 0;
  number targetX = 6;
  number acted = 0;
  number phaseLog = 0;
effects:
  number vx : avg;
  number act : sum;
  number phase : max = 0;
update:
  x = x + vx;
  acted = acted + act;
  phaseLog = phase;
script quest {
  vx <- 2;
  waitNextTick;
  phase <- 1;
  act <- 1;
  waitNextTick;
  phase <- 2;
  act <- 10;
}
}
"#;

/// Desugared: the same behaviour with an explicit program counter, the
/// way scripters had to write it before §3.2.
const HAND_WRITTEN: &str = r#"
class Npc {
state:
  number x = 0;
  number targetX = 6;
  number acted = 0;
  number phaseLog = 0;
  number pc = 0;
effects:
  number vx : avg;
  number act : sum;
  number phase : max = 0;
  number pcNext : max = 0;
update:
  x = x + vx;
  acted = acted + act;
  phaseLog = phase;
  pc = pcNext;
script quest {
  if (pc == 0) {
    vx <- 2;
    pcNext <- 1;
  } else if (pc == 1) {
    phase <- 1;
    act <- 1;
    pcNext <- 2;
  } else {
    phase <- 2;
    act <- 10;
    pcNext <- 0;
  }
}
}
"#;

#[test]
fn sugared_and_hand_written_state_machines_agree() {
    let mut a = Simulation::builder().source(SUGARED).build().unwrap();
    let mut b = Simulation::builder().source(HAND_WRITTEN).build().unwrap();
    for sim in [&mut a, &mut b] {
        for i in 0..5 {
            sim.spawn("Npc", &[("x", Value::Number(i as f64))]).unwrap();
        }
    }
    for tick in 0..9 {
        a.tick();
        b.tick();
        assert_attr_eq(&a, &b, "Npc", "x", 1e-12);
        assert_attr_eq(&a, &b, "Npc", "acted", 1e-12);
        assert_attr_eq(&a, &b, "Npc", "phaseLog", 1e-12);
        let _ = tick;
    }
}

#[test]
fn segment_count_matches_wait_count() {
    let sim = Simulation::builder().source(SUGARED).build().unwrap();
    let class = sim.game().catalog.class_by_name("Npc").unwrap().id;
    let script = &sim.game().classes[class.0 as usize].scripts[0];
    assert_eq!(script.segments.len(), 3, "2 waits → 3 segments");
    assert!(script.pc_col.is_some());
}

#[test]
fn conditional_wait_resumes_correct_branch() {
    let src = r#"
class A {
state:
  number fast = 0;
  number log = 0;
effects:
  number mark : max = 0;
update:
  log = mark;
script s {
  if (fast == 0) {
    mark <- 1;
    waitNextTick;
    mark <- 2;
  } else {
    mark <- 9;
  }
}
}
"#;
    let mut sim = Simulation::builder().source(src).build().unwrap();
    let slow = sim.spawn("A", &[]).unwrap();
    let fast = sim.spawn("A", &[("fast", Value::Number(1.0))]).unwrap();
    sim.tick();
    assert_eq!(sim.get(slow, "log").unwrap(), Value::Number(1.0));
    assert_eq!(sim.get(fast, "log").unwrap(), Value::Number(9.0));
    sim.tick();
    assert_eq!(sim.get(slow, "log").unwrap(), Value::Number(2.0));
    assert_eq!(sim.get(fast, "log").unwrap(), Value::Number(9.0));
}
