//! `sgl-net` replication end-to-end: property-tested wire round-trips
//! (random snapshot + delta sequences decode to a replica equal to the
//! server's view), stripe-straddling subscriptions on multi-node
//! clusters, and fuzzed frames that must never panic the decoder.

use proptest::prelude::*;
use sgl::{ClassId, EntityId, RefSet};
use sgl::{ClientReplica, InterestSpec, ReplicationServer, Simulation, Value};
use sgl_dist::{DistConfig, DistSim};
use sgl_net::{input, InputBatch, Intent, NetConfig, ReplicationSource};

const GAME: &str = r#"
class Unit {
state:
  number x = 0;
  number hp = 10;
  bool alive = true;
}
"#;

/// The authoritative subscribed region of `class` on any source.
fn region<S: ReplicationSource>(
    src: &S,
    class: ClassId,
    spec: &InterestSpec,
) -> Vec<(EntityId, Vec<Value>)> {
    let mut rows = Vec::new();
    for k in 0..src.shards() {
        let world = src.shard_world(k);
        let table = world.table(class);
        let col = table.schema().index_of(&spec.attr).unwrap();
        let xs = table.column(col).f64();
        for (row, &id) in table.ids().iter().enumerate() {
            if spec.contains(xs[row]) && !world.is_ghost(class, id) {
                let values = (0..table.schema().len())
                    .map(|ci| table.column(ci).get(row))
                    .collect();
                rows.push((id, values));
            }
        }
    }
    rows.sort_unstable_by_key(|(id, _)| *id);
    rows
}

fn assert_identical<S: ReplicationSource>(
    replica: &ClientReplica,
    src: &S,
    class: ClassId,
    spec: &InterestSpec,
) {
    let expected = region(src, class, spec);
    assert_eq!(replica.population(), expected.len(), "population diverged");
    for (id, values) in &expected {
        assert_eq!(
            replica.row(class, *id),
            Some(values.as_slice()),
            "mirror of {id:?} diverged"
        );
    }
}

/// One random host-side mutation between ticks.
#[derive(Debug, Clone)]
enum Op {
    Spawn { x: f64, hp: f64 },
    Move { slot: usize, x: f64 },
    Hurt { slot: usize, hp: f64 },
    Despawn { slot: usize },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (-50.0..150.0f64, 0.0..20.0f64).prop_map(|(x, hp)| Op::Spawn { x, hp }),
        (0usize..64, -50.0..150.0f64).prop_map(|(slot, x)| Op::Move { slot, x }),
        (0usize..64, 0.0..20.0f64).prop_map(|(slot, hp)| Op::Hurt { slot, hp }),
        (0usize..64).prop_map(|slot| Op::Despawn { slot }),
    ];
    prop::collection::vec(op, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random mutation sequences stream through the wire codec into a
    /// replica that stays value-identical to the server's subscribed
    /// region after every frame — in both change-detection modes, with
    /// bit-identical frames.
    #[test]
    fn random_delta_sequences_keep_replicas_identical(ops in ops()) {
        let mut sim = Simulation::builder().source(GAME).build().unwrap();
        let class = sim.world().class_id("Unit").unwrap();
        let spec: InterestSpec = "Unit where x in [0, 100]".parse().unwrap();
        let catalog = sim.world().catalog().clone();

        let mut gen_server = ReplicationServer::new(catalog.clone());
        let mut scan_server = ReplicationServer::with_config(
            catalog.clone(),
            NetConfig { use_generations: false },
        );
        gen_server.attach(&spec).unwrap();
        scan_server.attach(&spec).unwrap();
        let mut replica = ClientReplica::new(catalog.clone());

        let mut live: Vec<EntityId> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Spawn { x, hp } => {
                    let id = sim
                        .spawn("Unit", &[("x", Value::Number(*x)), ("hp", Value::Number(*hp))])
                        .unwrap();
                    live.push(id);
                }
                Op::Move { slot, x } if !live.is_empty() => {
                    let id = live[slot % live.len()];
                    sim.set(id, "x", &Value::Number(*x)).unwrap();
                }
                Op::Hurt { slot, hp } if !live.is_empty() => {
                    let id = live[slot % live.len()];
                    sim.set(id, "hp", &Value::Number(*hp)).unwrap();
                }
                Op::Despawn { slot } if !live.is_empty() => {
                    let id = live.remove(slot % live.len());
                    sim.despawn(id);
                }
                _ => {}
            }
            // Stream every few mutations (batched deltas), and always
            // after the last one.
            if i % 3 == 2 || i + 1 == ops.len() {
                let fg = gen_server.poll(&sim);
                let fs = scan_server.poll(&sim);
                prop_assert_eq!(&fg[0].1, &fs[0].1, "modes disagree");
                replica.apply(&fg[0].1).unwrap();
                assert_identical(&replica, &sim, class, &spec);
            }
        }
    }

    /// Truncating or bit-flipping a frame must yield `Corrupt`, never a
    /// panic; applying the damaged frame must never desync the replica.
    #[test]
    fn damaged_frames_never_panic_or_desync(cut in 0usize..4096, pos in 0usize..4096, flip in 1u8..=255) {
        let mut sim = Simulation::builder().source(GAME).build().unwrap();
        for i in 0..8 {
            sim.spawn("Unit", &[("x", Value::Number(i as f64 * 10.0))]).unwrap();
        }
        let catalog = sim.world().catalog().clone();
        let mut server = ReplicationServer::new(catalog.clone());
        server.attach_str("Unit where x in [0, 100]").unwrap();
        let frames = server.poll(&sim);
        let bytes = &frames[0].1;

        let mut replica = ClientReplica::new(catalog.clone());
        let pristine = replica.clone();
        // Truncation: always an error (a valid prefix is impossible —
        // the frame ends exactly at its last block).
        let cut = cut % bytes.len();
        prop_assert!(replica.apply(&bytes[..cut]).is_err());
        // Bit flip: either rejected, or — if the flip lands in a value
        // payload — decodes to *some* consistent mirror; never a panic.
        let mut damaged = bytes.to_vec();
        let at = pos % damaged.len();
        damaged[at] ^= flip;
        let _ = replica.apply(&damaged);
        drop(pristine);
    }
}

/// Strategies for arbitrary input-frame contents (the client → server
/// direction of the transport). Class/column/entity ids are arbitrary
/// too: the codec is purely structural, so out-of-range references
/// must round-trip untouched for the *validator* to reject later.
fn values() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1e12..1e12f64).prop_map(Value::Number),
        prop_oneof![Just(true), Just(false)].prop_map(Value::Bool),
        (0u64..1000).prop_map(|id| Value::Ref(EntityId(id))),
        prop::collection::vec(0u64..1000, 0..8)
            .prop_map(|ids| Value::Set(RefSet::from_ids(ids.into_iter().map(EntityId).collect()))),
    ]
}

fn intents() -> impl Strategy<Value = Vec<Intent>> {
    let intent = prop_oneof![
        (
            0u32..100,
            0u32..16,
            prop::collection::vec((0u16..32, values()), 0..6)
        )
            .prop_map(|(req, class, values)| Intent::Spawn {
                req,
                class: ClassId(class),
                values,
            }),
        (0u32..16, 0u64..1000, 0u16..32, values()).prop_map(|(class, id, col, value)| {
            Intent::Set {
                class: ClassId(class),
                id: EntityId(id),
                col,
                value,
            }
        }),
        (0u32..16, 0u64..1000).prop_map(|(class, id)| Intent::Despawn {
            class: ClassId(class),
            id: EntityId(id),
        }),
    ];
    prop::collection::vec(intent, 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary intent batches encode → frame → decode bit-identically
    /// (the `SGI1` companion of the `SGN1` round-trip above).
    #[test]
    fn input_batches_roundtrip(session in 0u32..1000, tick in 0u64..1_000_000, intents in intents()) {
        let batch = InputBatch { session, tick, intents };
        let bytes = input::encode(&batch);
        let decoded = input::decode(&bytes).expect("well-formed batches decode");
        prop_assert_eq!(decoded, batch);
    }
}

/// A subscription window straddling stripe boundaries on a 4-node
/// cluster: contributions fan out to every overlapping node and merge
/// into one frame; the replica equals the union of the per-node owned
/// regions; pruned nodes are never scanned.
#[test]
fn straddling_subscription_fans_out_and_merges() {
    let span = 200.0;
    let game = Simulation::builder()
        .source(GAME)
        .build()
        .unwrap()
        .game()
        .clone();
    // No scripts read neighbours, so a zero halo keeps the cluster exact.
    let mut cluster = DistSim::new(game, DistConfig::new(4, "x", (0.0, span), 5.0)).unwrap();
    let class = cluster.game().catalog.class_by_name("Unit").unwrap().id;
    let catalog = cluster.game().catalog.clone();

    // Units spread across all four stripes ([0,50), [50,100), …).
    let mut ids = Vec::new();
    for i in 0..40 {
        let x = i as f64 * 5.0; // 0, 5, …, 195
        ids.push(cluster.spawn("Unit", &[("x", Value::Number(x))]).unwrap());
    }

    // The window [40, 110] overlaps stripes 0, 1 and 2 but not 3.
    let spec: InterestSpec = "Unit where x in [40, 110]".parse().unwrap();
    let mut server = ReplicationServer::new(catalog.clone());
    server.attach(&spec).unwrap();
    let mut replica = ClientReplica::new(catalog.clone());

    let frames = server.poll(&cluster);
    replica.apply(&frames[0].1).unwrap();
    assert_identical(&replica, &cluster, class, &spec);
    let stats = server.last_stats().clone();
    assert!(
        stats.fanout.msgs >= 3,
        "expected ≥3 contributing shards, got {}",
        stats.fanout.msgs
    );
    assert_eq!(stats.scanned, 3, "stripe 3 must be pruned from the fan-out");
    assert!(stats.fanout.bytes > 0);

    // Drive entities across the seams with host writes and steps.
    for round in 0..6 {
        if round % 2 == 0 {
            // Host-side teleports, including cross-stripe re-homes.
            for (j, &id) in ids.iter().enumerate() {
                if j % 7 == round % 7 {
                    let x = ((j * 37 + round * 53) % 200) as f64;
                    cluster.set(id, "x", &Value::Number(x)).unwrap();
                }
            }
            if round == 4 {
                cluster.despawn(ids[9]);
            }
        } else {
            cluster.step();
        }
        let frames = server.poll(&cluster);
        replica.apply(&frames[0].1).unwrap();
        assert_identical(&replica, &cluster, class, &spec);
    }
    let sstats = server.session_stats(sgl::SessionId(0)).unwrap();
    assert!(
        sstats.enters > 0 && sstats.exits > 0,
        "seam crossings observed"
    );
}

/// A checkpoint restore rebuilds every table; generation cursors held
/// by live sessions must never false-match the rebuilt counters and
/// skip changed state (gen values are globally unique, so an equal
/// number of post-restore mutations cannot recreate an old cursor).
#[test]
fn sessions_survive_checkpoint_restore_without_false_skips() {
    let mut sim = Simulation::builder().source(GAME).build().unwrap();
    let class = sim.world().class_id("Unit").unwrap();
    let spec: InterestSpec = "Unit where x in [0, 100]".parse().unwrap();
    let catalog = sim.world().catalog().clone();
    let a = sim.spawn("Unit", &[("x", Value::Number(10.0))]).unwrap();

    let mut server = ReplicationServer::new(catalog.clone());
    server.attach(&spec).unwrap();
    let mut replica = ClientReplica::new(catalog);

    // Establish cursors, snapshot, then diverge and roll back.
    replica.apply(&server.poll(&sim)[0].1).unwrap();
    let snap = sim.checkpoint();
    sim.set(a, "hp", &Value::Number(3.0)).unwrap();
    replica.apply(&server.poll(&sim)[0].1).unwrap();
    sim.restore(&snap).unwrap();
    // Same number of mutations as the session saw before the restore:
    // a naive per-table counter would land on an aliasing value.
    sim.set(a, "hp", &Value::Number(7.0)).unwrap();
    replica.apply(&server.poll(&sim)[0].1).unwrap();
    assert_identical(&replica, &sim, class, &spec);
    assert_eq!(replica.get(class, a, "hp"), Some(Value::Number(7.0)));
}

/// Re-pointing a server at a source with a different shard count
/// resynchronizes sessions (fresh baseline) instead of stranding
/// mirror entries tagged with shard indexes of the old shape.
#[test]
fn source_shape_changes_trigger_a_resync() {
    let span = 120.0;
    let game = Simulation::builder()
        .source(GAME)
        .build()
        .unwrap()
        .game()
        .clone();
    let mut cluster = DistSim::new(game, DistConfig::new(4, "x", (0.0, span), 5.0)).unwrap();
    let catalog = cluster.game().catalog.clone();
    let class = catalog.class_by_name("Unit").unwrap().id;
    for i in 0..12 {
        cluster
            .spawn("Unit", &[("x", Value::Number(i as f64 * 10.0))])
            .unwrap();
    }
    let spec: InterestSpec = "Unit where x in [0, 120]".parse().unwrap();
    let mut server = ReplicationServer::new(catalog.clone());
    server.attach(&spec).unwrap();
    let mut replica = ClientReplica::new(catalog.clone());
    replica.apply(&server.poll(&cluster)[0].1).unwrap();
    assert_eq!(replica.population(), 12);

    // Same catalog, different deployment, smaller world: every frame
    // after the swap must be a clean baseline of the new source.
    let mut single = Simulation::builder().source(GAME).build().unwrap();
    for i in 0..3 {
        single
            .spawn("Unit", &[("x", Value::Number(i as f64 * 10.0))])
            .unwrap();
    }
    replica.apply(&server.poll(&single)[0].1).unwrap();
    assert_identical(&replica, &single, class, &spec);
    assert_eq!(replica.population(), 3, "no phantom entities survive");
}

/// Regression for the incremental halo exchange: a session attached to
/// a multi-node `DistSim` must skip unchanged stripes via generation
/// counters, even when those stripes host ghost replicas. The old
/// drop-and-respawn halo rebuild bumped every column generation of
/// every ghost-bearing extent each tick, so a stationary cluster world
/// looked permanently dirty and every poll re-scanned every stripe.
#[test]
fn dist_sessions_skip_unchanged_stripes() {
    let span = 200.0;
    let game = Simulation::builder()
        .source(GAME)
        .build()
        .unwrap()
        .game()
        .clone();
    let mut cluster = DistSim::new(game, DistConfig::new(4, "x", (0.0, span), 8.0)).unwrap();
    let catalog = cluster.game().catalog.clone();
    let class = catalog.class_by_name("Unit").unwrap().id;
    // Units in every stripe, including seam-straddlers at 45/55/95/105/…
    // so every node hosts ghost replicas.
    for i in 0..40 {
        cluster
            .spawn("Unit", &[("x", Value::Number(i as f64 * 5.0))])
            .unwrap();
    }
    cluster.step();
    assert!(
        (0..4).any(|k| {
            let w = cluster.node_world(k);
            w.table(class).ids().iter().any(|&id| w.is_ghost(class, id))
        }),
        "the setup must actually produce ghost-bearing extents"
    );

    let spec: InterestSpec = "Unit where x in [0, 200]".parse().unwrap();
    let mut server = ReplicationServer::new(catalog.clone());
    server.attach(&spec).unwrap();
    let mut replica = ClientReplica::new(catalog);
    replica.apply(&server.poll(&cluster)[0].1).unwrap();
    let baseline_bytes = server.last_stats().total_bytes();

    // GAME has no update rules: further ticks change nothing, and the
    // incremental exchange must leave every generation untouched.
    for _ in 0..3 {
        cluster.step();
        assert_eq!(cluster.last_stats().ghost_traffic.msgs, 0);
        let frames = server.poll(&cluster);
        replica.apply(&frames[0].1).unwrap();
        let stats = server.last_stats();
        assert_eq!(
            stats.scanned, 0,
            "unchanged stripes must be skipped without scanning"
        );
        assert!(stats.skipped_scans > 0);
        assert_eq!(stats.updated_cells, 0);
        assert!(
            stats.total_bytes() < baseline_bytes / 10,
            "steady-state delta frames must be near-empty ({} vs baseline {baseline_bytes})",
            stats.total_bytes()
        );
    }
    assert_identical(&replica, &cluster, class, &spec);

    // One remote write dirties exactly the stripes that hold the row
    // (owner + ghost host); the rest stay skipped.
    let moved = cluster.node_world(1).table(class).ids()[0];
    cluster.set(moved, "hp", &Value::Number(3.0)).unwrap();
    cluster.step();
    let frames = server.poll(&cluster);
    replica.apply(&frames[0].1).unwrap();
    let stats = server.last_stats();
    assert!(
        stats.scanned >= 1 && stats.scanned <= 2,
        "owner stripe (+ ghost host) only, got {}",
        stats.scanned
    );
    assert!(stats.skipped_scans > 0, "untouched stripes still skip");
    assert_identical(&replica, &cluster, class, &spec);
}

/// The tentpole oracle: the shared-changeset path (one extraction per
/// changed extent, routed through the session interest index) must be
/// **bit-identical**, per session per tick, to the per-session
/// full-scan reference (`use_generations: false`) — for many sessions
/// with assorted windows, on a single world and on a 4-node cluster,
/// across churn (moves, spawns, despawns, seam crossings) and a
/// mid-trace attach (baseline mixed into the shared path).
#[test]
fn shared_changeset_frames_match_per_session_scan_path() {
    let windows = [
        "Unit where x in [0, 40]",
        "Unit where x in [35, 90]",
        "Unit where x in [120, 160]",
        "Unit where x in [0, 200]",
        "Unit where x in [95, 105]",  // straddles the 4-node seam at 100
        "Unit where x in [300, 400]", // never populated
    ];
    for shards in [1usize, 4] {
        let game = Simulation::builder()
            .source(GAME)
            .build()
            .unwrap()
            .game()
            .clone();
        let mut sim = DistSim::new(game, DistConfig::new(shards, "x", (0.0, 200.0), 8.0)).unwrap();
        let catalog = sim.game().catalog.clone();
        let mut ids = Vec::new();
        for i in 0..60 {
            ids.push(
                sim.spawn("Unit", &[("x", Value::Number((i * 7 % 200) as f64))])
                    .unwrap(),
            );
        }

        let mut shared = ReplicationServer::new(catalog.clone());
        let mut scan = ReplicationServer::with_config(
            catalog.clone(),
            NetConfig {
                use_generations: false,
            },
        );
        let mut sids = Vec::new();
        for w in &windows[..4] {
            let a = shared.attach_str(w).unwrap();
            let b = scan.attach_str(w).unwrap();
            assert_eq!(a, b);
            sids.push(a);
        }
        let mut replicas: Vec<ClientReplica> = (0..windows.len())
            .map(|_| ClientReplica::new(catalog.clone()))
            .collect();

        for round in 0..12 {
            match round % 4 {
                0 => {
                    for (j, &id) in ids.iter().enumerate() {
                        if j % 5 == (round / 4) % 5 {
                            let x = ((j * 31 + round * 17) % 200) as f64;
                            sim.set(id, "x", &Value::Number(x)).unwrap();
                        }
                    }
                }
                1 => {
                    sim.step();
                }
                2 => {
                    let id = sim
                        .spawn("Unit", &[("x", Value::Number((round * 13 % 200) as f64))])
                        .unwrap();
                    ids.push(id);
                    if round == 6 {
                        sim.despawn(ids[3]);
                    }
                }
                _ => {
                    for &id in ids.iter().take(10) {
                        if sim.class_of(id).is_some() {
                            sim.set(id, "hp", &Value::Number(round as f64)).unwrap();
                        }
                    }
                }
            }
            if round == 5 {
                // Mid-trace attaches: baselines ride along with the
                // shared path without disturbing caught-up sessions.
                for w in &windows[4..] {
                    let a = shared.attach_str(w).unwrap();
                    let b = scan.attach_str(w).unwrap();
                    assert_eq!(a, b);
                    sids.push(a);
                }
            }
            let fg = shared.poll(&sim);
            let fs = scan.poll(&sim);
            assert_eq!(fg.len(), fs.len());
            for ((ga, gb), (sa, sb)) in fg.iter().zip(fs.iter()) {
                assert_eq!(ga, sa, "session order (shards={shards}, round={round})");
                assert_eq!(
                    gb, sb,
                    "frames must be bit-identical (shards={shards}, round={round}, sid={ga:?})"
                );
            }
            for (sid, frame) in &fg {
                replicas[sid.0 as usize].apply(frame).unwrap();
            }
        }
        // The scan server never skips; the shared server must have.
        assert_eq!(scan.last_stats().sessions_skipped, 0);
        let st = shared.last_stats();
        assert_eq!(
            st.sessions_visited + st.sessions_skipped,
            windows.len() as u64
        );
        let class = catalog.class_by_name("Unit").unwrap().id;
        for sid in &sids {
            let spec = shared.session_interest(*sid).unwrap().clone();
            assert_identical(&replicas[sid.0 as usize], &sim, class, &spec);
        }
    }
}

/// Fan-out pruning: with disjoint-range sessions, a change localized to
/// one window visits only that session — `sessions_visited` is the
/// number of *affected* sessions, not the number attached — on a
/// single world and on a 4-node cluster alike.
#[test]
fn interest_index_prunes_disjoint_sessions() {
    for shards in [1usize, 4] {
        let game = Simulation::builder()
            .source(GAME)
            .build()
            .unwrap()
            .game()
            .clone();
        let mut sim = DistSim::new(game, DistConfig::new(shards, "x", (0.0, 1600.0), 8.0)).unwrap();
        let catalog = sim.game().catalog.clone();
        let class = catalog.class_by_name("Unit").unwrap().id;
        let mut ids = Vec::new();
        for i in 0..160 {
            ids.push(
                sim.spawn("Unit", &[("x", Value::Number(i as f64 * 10.0))])
                    .unwrap(),
            );
        }

        // 16 disjoint windows of 90 units each: [0,90], [100,190], …
        let mut server = ReplicationServer::new(catalog.clone());
        let mut replicas = Vec::new();
        for w in 0..16 {
            let lo = w as f64 * 100.0;
            server
                .attach(&InterestSpec::classes(&["Unit"], "x", lo, lo + 90.0))
                .unwrap();
            replicas.push(ClientReplica::new(catalog.clone()));
        }
        for (sid, frame) in server.poll(&sim) {
            replicas[sid.0 as usize].apply(&frame).unwrap();
        }

        // Stationary world: every extent skips, every session skips.
        let frames = server.poll(&sim);
        let stats = server.last_stats();
        assert_eq!(stats.sessions_visited, 0, "shards={shards}");
        assert_eq!(stats.sessions_skipped, 16, "shards={shards}");
        for (sid, frame) in frames {
            replicas[sid.0 as usize].apply(&frame).unwrap();
        }

        // A change localized to window 3 (x ∈ [300, 390]) visits only
        // session 3; the other 15 are pruned by the interest index.
        sim.set(ids[31], "hp", &Value::Number(42.0)).unwrap(); // x = 310
        let frames = server.poll(&sim);
        let stats = server.last_stats().clone();
        assert_eq!(
            stats.sessions_visited, 1,
            "only the affected session does work (shards={shards})"
        );
        assert_eq!(stats.sessions_skipped, 15, "shards={shards}");
        assert_eq!(stats.updated_cells, 1);
        for (sid, frame) in frames {
            replicas[sid.0 as usize].apply(&frame).unwrap();
        }
        for (w, replica) in replicas.iter().enumerate() {
            let spec =
                InterestSpec::classes(&["Unit"], "x", w as f64 * 100.0, w as f64 * 100.0 + 90.0);
            assert_identical(replica, &sim, class, &spec);
        }
    }
}

/// Live re-subscription: the next frame after a window swap is a delta
/// carrying exactly the symmetric difference — exits for mirrored
/// entities the new window dropped, enters for newly covered ones, no
/// baseline, no mirror reset — after which the session rides the
/// shared changeset path again.
#[test]
fn resubscribe_emits_symmetric_difference() {
    let mut sim = Simulation::builder().source(GAME).build().unwrap();
    let class = sim.world().class_id("Unit").unwrap();
    let catalog = sim.world().catalog().clone();
    for i in 0..10 {
        // x = 0, 10, …, 90
        sim.spawn("Unit", &[("x", Value::Number(i as f64 * 10.0))])
            .unwrap();
    }
    let mut server = ReplicationServer::new(catalog.clone());
    let sid = server.attach_str("Unit where x in [0, 50]").unwrap();
    let mut replica = ClientReplica::new(catalog.clone());
    replica.apply(&server.poll(&sim)[0].1).unwrap();
    assert_eq!(replica.population(), 6); // x = 0..=50

    // Swap to [30, 80]: lose x ∈ {0,10,20}, keep {30,40,50}, gain {60,70,80}.
    let new_spec: InterestSpec = "Unit where x in [30, 80]".parse().unwrap();
    server.resubscribe(sid, &new_spec).unwrap();
    assert_eq!(server.session_interest(sid), Some(&new_spec));
    let frames = server.poll(&sim);
    let summary = replica.apply(&frames[0].1).unwrap();
    assert_eq!((summary.enters, summary.exits), (3, 3));
    assert_eq!(summary.updated_cells, 0, "the intersection is untouched");
    assert_identical(&replica, &sim, class, &new_spec);
    let stats = server.last_stats();
    assert_eq!(stats.exits, 3, "window exits, not despawns");
    assert_eq!(stats.despawns, 0);

    // Back on the shared path: a stationary tick skips the session.
    replica.apply(&server.poll(&sim)[0].1).unwrap();
    let stats = server.last_stats();
    assert_eq!(stats.sessions_skipped, 1);
    assert!(stats.skipped_scans > 0);
    assert_identical(&replica, &sim, class, &new_spec);

    // An unresolvable resubscription is rejected and changes nothing.
    assert!(server
        .resubscribe(sid, &InterestSpec::classes(&["Ghost"], "x", 0.0, 1.0))
        .is_err());
    assert_eq!(server.session_interest(sid), Some(&new_spec));
    // Unknown sessions are refused.
    assert!(server.resubscribe(sgl::SessionId(99), &new_spec).is_err());
}

/// The same subscription against a 1-node and a 4-node cluster yields
/// bit-identical frame streams — replication is deployment-transparent.
#[test]
fn replication_is_identical_across_cluster_shapes() {
    let span = 120.0;
    let build = || {
        Simulation::builder()
            .source(GAME)
            .build()
            .unwrap()
            .game()
            .clone()
    };
    let mut one = DistSim::new(build(), DistConfig::new(1, "x", (0.0, span), 5.0)).unwrap();
    let mut four = DistSim::new(build(), DistConfig::new(4, "x", (0.0, span), 5.0)).unwrap();
    for i in 0..30 {
        let vals = [("x", Value::Number(i as f64 * 4.0))];
        assert_eq!(
            one.spawn("Unit", &vals).unwrap(),
            four.spawn("Unit", &vals).unwrap()
        );
    }
    let catalog = one.game().catalog.clone();
    let mut s1 = ReplicationServer::new(catalog.clone());
    let mut s4 = ReplicationServer::new(catalog.clone());
    s1.attach_str("Unit where x in [30, 90]").unwrap();
    s4.attach_str("Unit where x in [30, 90]").unwrap();
    let mut r1 = ClientReplica::new(catalog.clone());
    let mut r4 = ClientReplica::new(catalog);

    for _ in 0..5 {
        one.step();
        four.step();
        let f1 = s1.poll(&one);
        let f4 = s4.poll(&four);
        assert_eq!(f1[0].1, f4[0].1, "frames must not depend on sharding");
        r1.apply(&f1[0].1).unwrap();
        r4.apply(&f4[0].1).unwrap();
    }
    assert_eq!(r1.population(), r4.population());
}
