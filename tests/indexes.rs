//! Property tests: every spatial index answers box queries identically
//! to the linear scan, across dimensions, duplicates and degenerate
//! boxes. This is the §4.2 index substrate's core invariant.

use proptest::prelude::*;
use sgl_index::{build_index, IndexKind, PointSet, SpatialIndex};

fn query_sorted(idx: &dyn SpatialIndex, lo: &[f64], hi: &[f64]) -> Vec<u32> {
    let mut out = Vec::new();
    idx.query(lo, hi, &mut out);
    out.sort_unstable();
    out
}

fn points_from(coords: &[Vec<f64>], dims: usize) -> PointSet {
    let mut p = PointSet::new(dims);
    for c in coords {
        p.push(c);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_indexes_agree_with_scan_2d(
        coords in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 2..=2), 0..200),
        q in prop::collection::vec(-120.0f64..120.0, 4..=4),
    ) {
        let pts = points_from(&coords, 2);
        let lo = [q[0].min(q[2]), q[1].min(q[3])];
        let hi = [q[0].max(q[2]), q[1].max(q[3])];
        let scan = build_index(IndexKind::Scan, &pts);
        let expect = query_sorted(scan.as_ref(), &lo, &hi);
        for kind in [IndexKind::Grid, IndexKind::KdTree, IndexKind::RangeTree] {
            let idx = build_index(kind, &pts);
            prop_assert_eq!(
                query_sorted(idx.as_ref(), &lo, &hi),
                expect.clone(),
                "kind {}", kind
            );
        }
    }

    #[test]
    fn all_indexes_agree_with_scan_3d(
        coords in prop::collection::vec(
            prop::collection::vec(-50.0f64..50.0, 3..=3), 0..120),
        q in prop::collection::vec(-60.0f64..60.0, 6..=6),
    ) {
        let pts = points_from(&coords, 3);
        let lo = [q[0].min(q[3]), q[1].min(q[4]), q[2].min(q[5])];
        let hi = [q[0].max(q[3]), q[1].max(q[4]), q[2].max(q[5])];
        let scan = build_index(IndexKind::Scan, &pts);
        let expect = query_sorted(scan.as_ref(), &lo, &hi);
        for kind in [IndexKind::Grid, IndexKind::KdTree, IndexKind::RangeTree] {
            let idx = build_index(kind, &pts);
            prop_assert_eq!(
                query_sorted(idx.as_ref(), &lo, &hi),
                expect.clone(),
                "kind {}", kind
            );
        }
    }

    #[test]
    fn duplicates_and_point_queries(
        value in -10.0f64..10.0,
        copies in 1usize..64,
    ) {
        let coords = vec![vec![value, value]; copies];
        let pts = points_from(&coords, 2);
        for kind in [IndexKind::Grid, IndexKind::KdTree, IndexKind::RangeTree] {
            let idx = build_index(kind, &pts);
            let got = query_sorted(idx.as_ref(), &[value, value], &[value, value]);
            prop_assert_eq!(got.len(), copies, "kind {}", kind);
        }
    }

    #[test]
    fn sorted_index_1d(
        xs in prop::collection::vec(-100.0f64..100.0, 0..200),
        a in -120.0f64..120.0,
        b in -120.0f64..120.0,
    ) {
        let coords: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let pts = points_from(&coords, 1);
        let (lo, hi) = ([a.min(b)], [a.max(b)]);
        let scan = build_index(IndexKind::Scan, &pts);
        let sorted = build_index(IndexKind::Sorted, &pts);
        prop_assert_eq!(
            query_sorted(sorted.as_ref(), &lo, &hi),
            query_sorted(scan.as_ref(), &lo, &hi)
        );
    }
}

#[test]
fn range_tree_space_grows_as_n_log_n() {
    // The §4.2 space analysis: entries(2-D tree) ≈ n·(log₂ n + 1) + n.
    for n in [1usize << 8, 1 << 10, 1 << 12] {
        let mut pts = PointSet::new(2);
        let mut s = 0x9E3779B97F4A7C15u64;
        for _ in 0..n {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let x = (s >> 11) as f64;
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let y = (s >> 11) as f64;
            pts.push(&[x, y]);
        }
        let tree = sgl_index::RangeTree::build(&pts);
        let entries = tree.entry_count();
        let predicted = n * ((n as f64).log2() as usize + 2);
        let ratio = entries as f64 / predicted as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "n={n}: entries={entries}, predicted≈{predicted}"
        );
    }
}
