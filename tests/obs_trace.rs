//! The telemetry plane end to end: a traced RTS run emits JSONL
//! records that pass the strict schema validator (the golden-file
//! gate), rule-level attribution sums to the measured query-phase
//! span and names the declarative rules, tracing never perturbs the
//! simulation (bit-identity on vs off, serial and parallel), span
//! nesting balances even when rules panic mid-tick, and the slow-tick
//! watchdog emits its structured record.
//!
//! Trace paths are always explicit temp files — never the `SGL_TRACE`
//! environment variable, which would race across parallel tests.

use proptest::prelude::*;
use sgl::ObsConfig;
use sgl_obs::{json, validate_trace_line, Tracer};
use sgl_workloads::rts::{self, RtsParams};

/// A collision-free temp path (tests run in parallel in one process).
fn temp_trace(tag: &str) -> String {
    let mut path = std::env::temp_dir();
    path.push(format!("sgl_obs_{}_{}.jsonl", tag, std::process::id()));
    let path = path.to_string_lossy().into_owned();
    let _ = std::fs::remove_file(&path);
    path
}

fn small_params() -> RtsParams {
    RtsParams {
        units_per_side: 40,
        arena: 60.0,
        obs: ObsConfig::off(),
        ..RtsParams::default()
    }
}

/// Sorted `(id, health)` pairs — the simulation fingerprint.
fn fingerprint(sim: &sgl::Simulation) -> Vec<(u64, i64)> {
    let world = sim.world();
    let class = world.class_id("Unit").unwrap();
    let mut v: Vec<(u64, i64)> = world
        .table(class)
        .ids()
        .iter()
        .map(|id| {
            (
                id.0,
                world.get(*id, "health").unwrap().as_number().unwrap() as i64,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

/// Golden-file gate: a 20-tick traced RTS run writes one record per
/// tick, every record passes the strict validator, ticks are
/// consecutive, and the engine phase set is exactly the documented one.
#[test]
fn traced_rts_run_emits_valid_consecutive_records() {
    let path = temp_trace("golden");
    let mut params = small_params();
    params.obs = ObsConfig::off().with_trace_path(&path);
    let mut sim = rts::build(&params);
    sim.run(20);
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 20, "one record per tick");
    for (i, line) in lines.iter().enumerate() {
        validate_trace_line(line).unwrap_or_else(|e| panic!("line {}: {e}\n{line}", i + 1));
        let v = json::parse(line).unwrap();
        assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("tick"));
        assert_eq!(v.get("source").and_then(|s| s.as_str()), Some("engine"));
        assert_eq!(v.get("tick").and_then(|t| t.as_u64()), Some(i as u64));
        let phases: Vec<String> = v
            .get("phases")
            .and_then(|p| p.as_arr())
            .unwrap()
            .iter()
            .map(|p| p.get("name").and_then(|n| n.as_str()).unwrap().to_string())
            .collect();
        assert_eq!(
            phases,
            ["effect", "query_eval", "effect_apply", "update", "reactive"],
            "line {}: engine phase taxonomy",
            i + 1
        );
        let rules = v.get("rules").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(rules.len(), 2, "both Unit rules attributed");
        // Spans were recorded (tracing is on when a path is set).
        assert!(!v.get("spans").and_then(|s| s.as_arr()).unwrap().is_empty());
        assert_eq!(v.get("dropped_spans").and_then(|d| d.as_u64()), Some(0));
    }
    let _ = std::fs::remove_file(&path);
}

/// Rule attribution names the declarative rules and its times
/// partition the measured query-phase span (laps cover the whole
/// executor run, so the sum tracks the span by construction; the
/// bound is loose only for dev-profile timer noise).
#[test]
fn explain_tick_names_rules_and_sums_to_query_span() {
    let mut sim = rts::build(&small_params());
    sim.run(5);
    let report = sim.explain_tick();
    let names: Vec<&str> = report.rules.iter().map(|r| r.name.as_str()).collect();
    assert!(names.contains(&"Unit/engage#0"), "{names:?}");
    assert!(names.contains(&"Unit/move#0"), "{names:?}");
    for r in &report.rules {
        assert!(r.span.1 > r.span.0, "{}: source span is real", r.name);
    }
    let engage = report.rules.iter().find(|r| r.name == "Unit/engage#0");
    assert!(engage.unwrap().rows > 0, "engage scanned the Unit extent");
    let sum = report.rules_nanos();
    assert!(sum <= report.query_nanos, "laps cannot exceed the span");
    assert!(
        sum * 10 >= report.query_nanos * 9,
        "rule sum {sum} strayed >10% from query span {}",
        report.query_nanos
    );
    let rendered = format!("{report}");
    assert!(rendered.contains("Unit/engage#0"), "{rendered}");
}

/// Tracing must observe, never perturb: with identical seeds the
/// simulation is bit-identical with tracing fully on (spans + JSONL +
/// metrics) and fully off, serially and across threads.
#[test]
fn tracing_on_vs_off_is_bit_identical_at_1_and_4_threads() {
    let mut baseline = None;
    for threads in [1usize, 4] {
        for traced in [false, true] {
            let path = temp_trace(&format!("ident_{threads}_{traced}"));
            let mut params = small_params();
            params.threads = threads;
            params.parallel_threshold = Some(16); // tiny armies still fan out
            params.obs = if traced {
                let mut obs = ObsConfig::off().with_trace_path(&path);
                obs.metrics = true;
                obs
            } else {
                ObsConfig::off()
            };
            let mut sim = rts::build(&params);
            sim.run(15);
            let fp = fingerprint(&sim);
            match &baseline {
                None => baseline = Some(fp),
                Some(want) => {
                    assert_eq!(&fp, want, "threads={threads} traced={traced} diverged")
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// An impossible budget makes every tick slow: the watchdog appends a
/// `slow_tick` record per tick, carrying the budget, and the records
/// still validate.
#[test]
fn slow_tick_watchdog_emits_structured_records() {
    let path = temp_trace("watchdog");
    let mut params = small_params();
    params.obs = ObsConfig::off()
        .with_trace_path(&path)
        .with_tick_budget_nanos(1);
    let mut sim = rts::build(&params);
    sim.run(3);
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let slow: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"type\":\"slow_tick\""))
        .collect();
    assert_eq!(slow.len(), 3, "every tick blew the 1ns budget");
    for line in slow {
        validate_trace_line(line).unwrap_or_else(|e| panic!("{e}\n{line}"));
        let v = json::parse(line).unwrap();
        assert_eq!(v.get("budget_nanos").and_then(|b| b.as_u64()), Some(1));
        assert!(v.get("wall_nanos").and_then(|w| w.as_u64()).unwrap() > 1);
    }
    let _ = std::fs::remove_file(&path);
}

/// The metrics registry accumulates across ticks and renders the
/// stable text format `MSG_STATS` serves.
#[test]
fn metrics_registry_accumulates_and_dumps() {
    let mut params = small_params();
    params.obs.metrics = true;
    let mut sim = rts::build(&params);
    sim.run(7);
    assert_eq!(sim.metrics().counter("tick.count"), 7);
    let dump = sim.dump_metrics();
    assert!(dump.contains("counter tick.count 7"), "{dump}");
    assert!(dump.contains("hist tick.total_nanos"), "{dump}");
}

/// `MSG_STATS` over a real socket: a client interrogates a live
/// listener and gets the `net.*` metrics dump; a malformed request
/// (non-empty payload) is a protocol violation and disconnects.
#[test]
fn msg_stats_serves_the_metrics_dump_over_tcp() {
    use sgl_net::{ClientEvent, NetClient, NetListener};
    use std::time::{Duration, Instant};

    let mut params = small_params();
    params.obs.metrics = true;
    let mut sim = rts::build(&params);
    let catalog = sim.world().catalog().clone();
    let mut listener = NetListener::bind("127.0.0.1:0", catalog.clone()).unwrap();
    let addr = listener.local_addr().unwrap();

    let spec: sgl::InterestSpec = "Unit where x in [0, 100]".parse().unwrap();
    let pending = NetClient::start_connect(addr, catalog, &spec).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while listener.session_count() < 1 {
        listener.accept_pending().unwrap();
        assert!(Instant::now() < deadline, "handshake timed out");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut client = pending.finish().unwrap();

    // One canonical tick so the registry holds a pump's worth of data.
    listener.drain_inputs(&mut sim);
    sim.tick();
    listener.pump_frames(&sim);
    client.recv_frame().unwrap();

    client.send_stats_request().unwrap();
    // The reply is served from the server's next input drain; sweep the
    // socket until the request has landed (loopback, so quickly).
    while listener.metrics().counter("net.stats_requests") < 1 {
        listener.drain_inputs(&mut sim);
        assert!(Instant::now() < deadline, "stats request never landed");
        std::thread::sleep(Duration::from_millis(1));
    }
    let text = match client.recv().unwrap() {
        ClientEvent::Stats(text) => text,
        other => panic!("expected the stats reply, got {other:?}"),
    };
    assert!(text.contains("counter net.polls 1"), "{text}");
    assert!(text.contains("counter net.frames 1"), "{text}");
    assert!(text.contains("gauge net.sessions 1"), "{text}");
    assert!(text.contains("hist net.pump_nanos"), "{text}");
    assert!(text.contains("hist net.drain_nanos"), "{text}");

    // A stats request carrying a payload is structurally corrupt: the
    // session is disconnected, other machinery untouched.
    let mut rogue = std::net::TcpStream::connect(addr).unwrap();
    sgl_net::transport::write_msg(
        &mut rogue,
        sgl_net::transport::MSG_HELLO,
        &sgl_net::transport::hello_payload(
            sgl_net::transport::PROTOCOL_VERSION,
            "Unit where x in [0, 100]",
        ),
    )
    .unwrap();
    while listener.session_count() < 2 {
        listener.accept_pending().unwrap();
        assert!(Instant::now() < deadline, "rogue handshake timed out");
        std::thread::sleep(Duration::from_millis(1));
    }
    sgl_net::transport::write_msg(&mut rogue, sgl_net::transport::MSG_STATS, b"x").unwrap();
    while listener.session_count() > 1 {
        listener.drain_inputs(&mut sim);
        assert!(Instant::now() < deadline, "rogue disconnect timed out");
        std::thread::sleep(Duration::from_millis(1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Span nesting balances even when a "rule" panics mid-tick: the
    /// guards unwind, depth returns to zero, and a subsequent tick
    /// records clean spans.
    #[test]
    fn span_nesting_balances_under_panicking_rules(
        depths in prop::collection::vec(1usize..6, 1..12),
        panic_at in 0usize..12,
    ) {
        let tracer = Tracer::new(64);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tracer.begin_tick();
            let _tick = tracer.span("tick");
            for (i, &d) in depths.iter().enumerate() {
                let _nested: Vec<_> = (0..d).map(|_| tracer.span("rule")).collect();
                if i == panic_at {
                    panic!("rule panicked mid-span");
                }
            }
        }))
        .is_err();
        prop_assert_eq!(panicked, panic_at < depths.len());
        // Unwinding closed every guard.
        prop_assert_eq!(tracer.depth(), 0);
        // The tracer still works: the next tick records balanced spans.
        tracer.begin_tick();
        {
            let _a = tracer.span("outer");
            let _b = tracer.span("inner");
        }
        prop_assert_eq!(tracer.depth(), 0);
        let spans = tracer.take_spans();
        prop_assert_eq!(spans.len(), 2);
        prop_assert!(spans.iter().any(|s| s.name == "outer" && s.depth == 0));
        prop_assert!(spans.iter().any(|s| s.name == "inner" && s.depth == 1));
    }
}
