//! The central correctness property: **compiled set-at-a-time execution
//! is observationally equivalent to object-at-a-time interpretation**.
//!
//! The paper's whole pitch rests on this — "despite the fact that this
//! script looks imperative, it can still be compiled to a relational
//! algebra query" (§2.1) is only true if the compilation preserves
//! semantics. These property tests run randomized worlds through both
//! executors and compare every state attribute.

use proptest::prelude::*;
use sgl::{ExecMode, Simulation, Value};
use sgl_tests::{assert_attr_eq, both_modes};

const COMBAT: &str = r#"
class Unit {
state:
  number player = 0;
  number x = 0;
  number y = 0;
  number health = 40;
  number range = 4;
  number seen = 0;
effects:
  number damage : sum;
  number near : sum;
update:
  health = health - damage;
  seen = near;
script fight {
  accum number cnt with sum over Unit u from Unit {
    if (u.x >= x - range && u.x <= x + range &&
        u.y >= y - range && u.y <= y + range) {
      if (u.player != player) {
        cnt <- 1;
        u.damage <- 1;
      }
    }
  } in {
    near <- cnt;
  }
}
}
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn combat_equivalence(
        positions in prop::collection::vec((0u32..30, 0u32..30, 0u32..2), 2..40),
        ticks in 1usize..5,
    ) {
        let (mut c, mut i) = both_modes(COMBAT);
        for &(x, y, p) in &positions {
            let attrs = [
                ("x", Value::Number(x as f64)),
                ("y", Value::Number(y as f64)),
                ("player", Value::Number(p as f64)),
            ];
            c.spawn("Unit", &attrs).unwrap();
            i.spawn("Unit", &attrs).unwrap();
        }
        c.run(ticks);
        i.run(ticks);
        assert_attr_eq(&c, &i, "Unit", "health", 0.0);
        assert_attr_eq(&c, &i, "Unit", "seen", 0.0);
    }
}

const MOVERS: &str = r#"
class Walker {
state:
  number x = 0;
  number gx = 0;
  number arrived = 0;
effects:
  number vx : avg;
  bool done : or;
update:
  x = x + vx;
  arrived = arrived + 1;
script walk {
  let dx = gx - x;
  if (dx > 0.5) {
    vx <- min(dx, 1);
  } else if (dx < -0.5) {
    vx <- max(dx, -1);
  } else {
    done <- true;
  }
}
}
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn movement_equivalence(
        walkers in prop::collection::vec((-20i32..20, -20i32..20), 1..30),
        ticks in 1usize..8,
    ) {
        let (mut c, mut i) = both_modes(MOVERS);
        for &(x, gx) in &walkers {
            let attrs = [
                ("x", Value::Number(x as f64)),
                ("gx", Value::Number(gx as f64)),
            ];
            c.spawn("Walker", &attrs).unwrap();
            i.spawn("Walker", &attrs).unwrap();
        }
        c.run(ticks);
        i.run(ticks);
        assert_attr_eq(&c, &i, "Walker", "x", 1e-9);
    }
}

const SETS: &str = r#"
class Node {
state:
  number x = 0;
  set<Node> friends;
  number degree = 0;
effects:
  set<Node> link : union;
  number fsum : sum;
update:
  friends = union(friends, link);
  degree = fsum;
script befriend {
  accum number c with count over Node n from Node {
    if (n.x >= x - 2 && n.x <= x + 2) {
      link <= n;
      c <- 1;
    }
  } in { }
}
script weigh {
  accum number s with sum over Node n from friends {
    if (n.x >= -1000) {
      s <- n.x;
    }
  } in {
    fsum <- s;
  }
}
}
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn set_and_ref_equivalence(
        xs in prop::collection::vec(0i32..12, 2..16),
        ticks in 1usize..4,
    ) {
        let (mut c, mut i) = both_modes(SETS);
        for &x in &xs {
            c.spawn("Node", &[("x", Value::Number(x as f64))]).unwrap();
            i.spawn("Node", &[("x", Value::Number(x as f64))]).unwrap();
        }
        c.run(ticks);
        i.run(ticks);
        assert_attr_eq(&c, &i, "Node", "degree", 1e-9);
        // Friend sets must be identical too.
        let wc = c.world();
        let wi = i.world();
        let class = wc.class_id("Node").unwrap();
        for id in wc.table(class).ids() {
            prop_assert_eq!(
                wc.get(*id, "friends").unwrap(),
                wi.get(*id, "friends").unwrap()
            );
        }
    }
}

const TEAM_SCAN: &str = r#"
class Unit {
state:
  number team = 0;
  number x = 0;
  number allies = 0;
effects:
  number near : sum;
update:
  allies = near;
script census {
  accum number cnt with sum over Unit u from Unit {
    if (u.team == team && u.x >= x - 5 && u.x <= x + 5) {
      cnt <- 1;
    }
  } in {
    near <- cnt;
  }
}
}
"#;

#[test]
fn equality_point_band_matches_interpreter() {
    // `u.team == team` compiles to a degenerate band; results must match
    // the scalar baseline exactly.
    let (mut c, mut i) = both_modes(TEAM_SCAN);
    for k in 0..60u32 {
        let attrs = [
            ("team", Value::Number((k % 3) as f64)),
            ("x", Value::Number((k % 20) as f64)),
        ];
        c.spawn("Unit", &attrs).unwrap();
        i.spawn("Unit", &attrs).unwrap();
    }
    c.run(2);
    i.run(2);
    assert_attr_eq(&c, &i, "Unit", "allies", 0.0);
}

#[test]
fn parallel_compiled_equals_serial_compiled() {
    // Integer-valued damage: parallel merge order cannot change results.
    let build = |threads: usize| {
        let mut sim = Simulation::builder()
            .source(COMBAT)
            .mode(ExecMode::Compiled)
            .threads(threads)
            .build()
            .unwrap();
        for k in 0..200u32 {
            sim.spawn(
                "Unit",
                &[
                    ("x", Value::Number((k % 25) as f64)),
                    ("y", Value::Number((k / 25) as f64)),
                    ("player", Value::Number((k % 2) as f64)),
                ],
            )
            .unwrap();
        }
        sim.run(4);
        sim
    };
    let serial = build(1);
    let parallel = build(8);
    assert_attr_eq(&serial, &parallel, "Unit", "health", 0.0);
    assert_attr_eq(&serial, &parallel, "Unit", "seen", 0.0);
}

#[test]
fn all_fixed_methods_agree() {
    use sgl::{IndexKind, JoinMethod};
    let methods = [
        JoinMethod::NL,
        JoinMethod::Index(IndexKind::Grid),
        JoinMethod::Index(IndexKind::KdTree),
        JoinMethod::Index(IndexKind::RangeTree),
    ];
    let mut results = Vec::new();
    for m in methods {
        let mut sim = Simulation::builder()
            .source(COMBAT)
            .fixed_method(m)
            .build()
            .unwrap();
        for k in 0..120u32 {
            sim.spawn(
                "Unit",
                &[
                    ("x", Value::Number((k % 15) as f64)),
                    ("y", Value::Number((k / 15) as f64)),
                    ("player", Value::Number((k % 2) as f64)),
                ],
            )
            .unwrap();
        }
        sim.run(3);
        let w = sim.world();
        let class = w.class_id("Unit").unwrap();
        let fp: Vec<f64> = w
            .table(class)
            .column_by_name("health")
            .unwrap()
            .f64()
            .to_vec();
        results.push((m, fp));
    }
    for pair in results.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "{:?} vs {:?} disagree",
            pair[0].0, pair[1].0
        );
    }
}
